//! # moard-vm
//!
//! Tracing interpreter, data-object registry, and deterministic fault
//! injector for the MOARD IR.
//!
//! This crate plays the role of two components of the original MOARD tool
//! (Guo & Li, IPDPS 2019, Fig. 3):
//!
//! * the **application trace generator** — an execution engine that records
//!   one [`trace::TraceRecord`] per dynamic operation, annotated with data
//!   semantics: which data-object element each consumed value corresponds to
//!   (the paper's register tracking + memory address range association), the
//!   memory addresses touched, and whether a stored value depends on the
//!   element it overwrites; and
//! * the **deterministic fault injector** — the same engine re-executes the
//!   program with a single-bit flip applied at an exact dynamic instruction
//!   ([`fault::FaultSpec`]), producing an [`outcome::ExecOutcome`] that the
//!   model compares against the golden run.
//!
//! ```
//! use moard_ir::prelude::*;
//! use moard_vm::{run_traced, run_with_fault, FaultSpec, FaultTarget};
//!
//! let mut m = Module::new("demo");
//! let a = m.add_global(Global::from_f64("a", &[1.0, 2.0, 3.0]));
//! let mut f = FunctionBuilder::new("main", &[], Some(Type::F64));
//! let x = f.load_elem(Type::F64, a, Operand::const_i64(2));
//! let y = f.fadd(Operand::Reg(x), Operand::const_f64(1.0));
//! f.store_elem(Type::F64, a, Operand::const_i64(0), Operand::Reg(y));
//! f.ret(Some(Operand::Reg(y)));
//! m.add_function(f.finish());
//!
//! let (golden, trace) = run_traced(&m).unwrap();
//! assert_eq!(golden.return_value.unwrap().as_f64(), 4.0);
//! assert!(trace.len() > 0);
//!
//! // Flip the sign bit of a[2] as it is loaded: the outcome changes.
//! let load_id = trace.iter()
//!     .find(|r| r.mnemonic() == "load").unwrap().id;
//! let faulty = run_with_fault(&m, &FaultSpec::single_bit(load_id, FaultTarget::LoadValue, 63)).unwrap();
//! assert_eq!(faulty.return_value.unwrap().as_f64(), -2.0);
//! ```

pub mod fault;
pub mod interp;
pub mod memory;
pub mod objects;
pub mod outcome;
pub mod paged;
pub mod taint;
pub mod trace;

pub use fault::{FaultSpec, FaultTarget};
pub use interp::{run_golden, run_traced, run_traced_with, run_with_fault, Vm, VmConfig, VmError};
pub use memory::{MemError, Memory, BASE_ADDR};
pub use objects::{DataObject, DataObjectRegistry, ObjectId};
pub use outcome::{ExecOutcome, ExecStatus, OutcomeClass};
pub use paged::{
    atomic_write, PagedTrace, PagedTraceWriter, TraceBackendSpec, TraceBuilder, TraceData,
    TraceError, DEFAULT_SEGMENT_RECORDS, PAGED_FORMAT_VERSION,
};
pub use taint::{TaintSet, TAINT_CAP};
pub use trace::{
    Operands, OperandsIter, Trace, TraceIndex, TraceOp, TraceRead, TraceRecord, TraceStats,
    TraceStorage, TracedVal, ValueSource, TERMINATOR_INST,
};
