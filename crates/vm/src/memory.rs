//! Flat, byte-addressable memory used by the interpreter.
//!
//! Globals (data objects) are allocated contiguously at module load time by a
//! bump allocator.  Addresses start at a non-zero base so that a corrupted
//! pointer of zero (or a small corrupted index) reliably faults instead of
//! silently aliasing a live object — mirroring the segmentation faults the
//! paper's deterministic fault injector observes for corrupted index arrays
//! such as `colidx`.

use moard_ir::{Type, Value};
use std::fmt;

/// Lowest valid address.  Anything below this is treated like an unmapped
/// page and triggers a [`MemError`].
pub const BASE_ADDR: u64 = 0x1000;

/// A memory access error (the VM reports these as crash outcomes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// Address (or address + size) is outside the allocated region.
    OutOfBounds { addr: u64, size: u64, limit: u64 },
    /// Allocation would exceed the configured memory capacity.
    OutOfMemory { requested: u64, capacity: u64 },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfBounds { addr, size, limit } => write!(
                f,
                "out-of-bounds access of {size} bytes at 0x{addr:x} (limit 0x{limit:x})"
            ),
            MemError::OutOfMemory {
                requested,
                capacity,
            } => write!(
                f,
                "allocation of {requested} bytes exceeds capacity {capacity}"
            ),
        }
    }
}

impl std::error::Error for MemError {}

/// Flat little-endian memory with a bump allocator.
#[derive(Debug, Clone)]
pub struct Memory {
    data: Vec<u8>,
    brk: u64,
    capacity: u64,
}

impl Memory {
    /// Create a memory with the given maximum capacity in bytes.
    pub fn new(capacity: u64) -> Memory {
        Memory {
            data: Vec::new(),
            brk: BASE_ADDR,
            capacity: capacity + BASE_ADDR,
        }
    }

    /// Current allocation break (one past the highest allocated address).
    pub fn brk(&self) -> u64 {
        self.brk
    }

    /// Allocate `size` bytes aligned to `align`, returning the base address.
    pub fn alloc(&mut self, size: u64, align: u64) -> Result<u64, MemError> {
        let align = align.max(1);
        let base = self.brk.div_ceil(align) * align;
        let end = base + size;
        if end > self.capacity {
            return Err(MemError::OutOfMemory {
                requested: size,
                capacity: self.capacity - BASE_ADDR,
            });
        }
        self.brk = end;
        let needed = (end - BASE_ADDR) as usize;
        if self.data.len() < needed {
            self.data.resize(needed, 0);
        }
        Ok(base)
    }

    fn check(&self, addr: u64, size: u64) -> Result<usize, MemError> {
        if addr < BASE_ADDR || addr.checked_add(size).is_none_or(|end| end > self.brk) {
            return Err(MemError::OutOfBounds {
                addr,
                size,
                limit: self.brk,
            });
        }
        Ok((addr - BASE_ADDR) as usize)
    }

    /// Read raw bytes.
    pub fn read_bytes(&self, addr: u64, size: u64) -> Result<&[u8], MemError> {
        let off = self.check(addr, size)?;
        Ok(&self.data[off..off + size as usize])
    }

    /// Load a scalar of type `ty` from `addr` (little-endian).
    pub fn load(&self, ty: Type, addr: u64) -> Result<Value, MemError> {
        let size = ty.byte_size();
        let off = self.check(addr, size)?;
        let mut raw = [0u8; 8];
        raw[..size as usize].copy_from_slice(&self.data[off..off + size as usize]);
        let bits = u64::from_le_bytes(raw);
        Ok(Value::from_bits(ty, bits))
    }

    /// Store a scalar of type `ty` to `addr` (little-endian).
    pub fn store(&mut self, ty: Type, addr: u64, value: Value) -> Result<(), MemError> {
        let size = ty.byte_size();
        let off = self.check(addr, size)?;
        let bits = value.to_bits().to_le_bytes();
        self.data[off..off + size as usize].copy_from_slice(&bits[..size as usize]);
        Ok(())
    }

    /// Flip bit `bit` of the scalar of type `ty` stored at `addr`.
    ///
    /// Single-bit convenience over [`Memory::flip_mask`].
    pub fn flip_bit(&mut self, ty: Type, addr: u64, bit: u32) -> Result<(), MemError> {
        self.flip_mask(ty, addr, 1u64 << (bit & 63))
    }

    /// XOR the set bits of `mask` into the scalar of type `ty` stored at
    /// `addr` (mask bits beyond the type width are ignored).
    ///
    /// This is the "transient fault on a data object element" primitive used
    /// by the deterministic fault injector when a fault site refers to a
    /// value residing in memory; single-bit and multi-bit error patterns are
    /// the same one-XOR operation here.
    pub fn flip_mask(&mut self, ty: Type, addr: u64, mask: u64) -> Result<(), MemError> {
        let v = self.load(ty, addr)?;
        self.store(ty, addr, v.flip_mask(mask))
    }

    /// Total bytes currently allocated.
    pub fn allocated(&self) -> u64 {
        self.brk - BASE_ADDR
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment() {
        let mut m = Memory::new(1 << 16);
        let a = m.alloc(3, 1).unwrap();
        let b = m.alloc(8, 8).unwrap();
        assert_eq!(a, BASE_ADDR);
        assert_eq!(b % 8, 0);
        assert!(b >= a + 3);
    }

    #[test]
    fn store_load_round_trip_all_types() {
        let mut m = Memory::new(1 << 16);
        let base = m.alloc(128, 8).unwrap();
        let samples = [
            Value::I8(-7),
            Value::I16(300),
            Value::I32(-70000),
            Value::I64(1 << 50),
            Value::F32(2.5),
            Value::F64(-1.25e-7),
            Value::Ptr(0xabc),
            Value::I1(true),
        ];
        let mut addr = base;
        for v in samples {
            m.store(v.ty(), addr, v).unwrap();
            let back = m.load(v.ty(), addr).unwrap();
            assert!(v.bits_eq(&back), "{v} failed round trip");
            addr += v.ty().byte_size();
        }
    }

    #[test]
    fn out_of_bounds_is_detected() {
        let mut m = Memory::new(64);
        let base = m.alloc(16, 8).unwrap();
        assert!(m.load(Type::F64, base + 16).is_err());
        assert!(m.load(Type::F64, 0).is_err());
        assert!(m.store(Type::I64, base + 9, Value::I64(0)).is_err());
        // Address arithmetic overflow must not panic.
        assert!(m.load(Type::F64, u64::MAX - 2).is_err());
    }

    #[test]
    fn capacity_is_enforced() {
        let mut m = Memory::new(32);
        assert!(m.alloc(16, 8).is_ok());
        assert!(m.alloc(64, 8).is_err());
    }

    #[test]
    fn flip_bit_in_memory() {
        let mut m = Memory::new(64);
        let a = m.alloc(8, 8).unwrap();
        m.store(Type::F64, a, Value::F64(1.0)).unwrap();
        m.flip_bit(Type::F64, a, 63).unwrap();
        assert_eq!(m.load(Type::F64, a).unwrap(), Value::F64(-1.0));
        m.flip_bit(Type::F64, a, 63).unwrap();
        assert_eq!(m.load(Type::F64, a).unwrap(), Value::F64(1.0));
        // A multi-bit mask applies in one XOR and is its own inverse.
        m.flip_mask(Type::F64, a, (1 << 62) | (1 << 63)).unwrap();
        assert!(m.load(Type::F64, a).unwrap().as_f64() != 1.0);
        m.flip_mask(Type::F64, a, (1 << 62) | (1 << 63)).unwrap();
        assert_eq!(m.load(Type::F64, a).unwrap(), Value::F64(1.0));
    }

    #[test]
    fn adjacent_scalars_do_not_clobber() {
        let mut m = Memory::new(64);
        let a = m.alloc(16, 8).unwrap();
        m.store(Type::I32, a, Value::I32(-1)).unwrap();
        m.store(Type::I32, a + 4, Value::I32(7)).unwrap();
        assert_eq!(m.load(Type::I32, a).unwrap(), Value::I32(-1));
        assert_eq!(m.load(Type::I32, a + 4).unwrap(), Value::I32(7));
    }
}
