//! Out-of-core paged trace backend: fixed-size record segments on disk.
//!
//! The in-memory [`Trace`] tops out when the whole record vector must stay
//! resident (~160 bytes/record ⇒ a 10M-record trace is gigabytes).  This
//! module stores the same records in **segments** of a fixed record count
//! (default [`DEFAULT_SEGMENT_RECORDS`]), written to disk *while the VM
//! traces*, with the per-object index persisted in a manifest alongside.
//! Analysis then streams: a [`PagedReader`] decodes at most a small LRU of
//! segments at a time, so the propagation replay's bounded window (`k`) and
//! the index-driven site enumeration never need the full trace in memory.
//!
//! ## File layout (one directory per trace)
//!
//! ```text
//! spill-dir/
//!   trace.manifest     header + segment table + per-object index + checksum
//!   seg-000000.bin     records [0, S)       S = segment_records
//!   seg-000001.bin     records [S, 2S)
//!   …                  last segment may be short
//! ```
//!
//! Every file is written with [`atomic_write`] (unique temp sibling, fsync,
//! rename — the hardened form of `moard_inject::store`'s discipline) and
//! carries a magic, a format version, the trace's `meta` fingerprint tying
//! segments to their manifest, and an FNV-1a checksum verified at decode.
//! Records are length-prefixed via a per-segment offset table: the record
//! *count* per segment is fixed, the byte width per record is not.
//!
//! Corruption handling mirrors the result store's *corrupt-equals-miss*
//! rule, adapted to a fallible context: [`PagedTrace::open`] and segment
//! decode return typed [`TraceError`]s; the infallible replay hot path
//! instead *poisons* the trace ([`TraceStorage::poisoned`]) and yields an
//! empty run, and the harness's `Result`-returning entry points surface the
//! poison after analysis.
//!
//! Spill directories are transient: a [`PagedTrace`] produced by
//! [`TraceBuilder::finish`] owns its directory and removes it on drop.

use crate::objects::ObjectId;
use crate::trace::{
    Trace, TraceIndex, TraceOp, TraceRead, TraceRecord, TraceStats, TraceStorage, TracedVal,
    ValueSource,
};
use moard_ir::{BinOp, BlockId, CastKind, CmpPred, FuncId, Intrinsic, RegId, Type, Value};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Format version of segment and manifest files.  Bump on any layout or
/// codec change: a reader refuses (typed [`TraceError::SchemaMismatch`])
/// rather than misdecodes.
pub const PAGED_FORMAT_VERSION: u32 = 1;

/// Default records per segment.  At ~40 encoded bytes/record a segment is
/// ~650 KiB on disk and ~2.5 MiB decoded, so the default 4-segment reader
/// LRU stays around 10 MiB regardless of trace length.
pub const DEFAULT_SEGMENT_RECORDS: usize = 16_384;

/// Decoded segments each reader keeps (LRU).  Sized so a propagation window
/// spanning a seam keeps both sides resident while site enumeration streams.
const READER_SEGMENT_CACHE: usize = 4;

const SEGMENT_MAGIC: &[u8; 8] = b"MOSEG1\0\0";
const MANIFEST_MAGIC: &[u8; 8] = b"MOIDX1\0\0";
const MANIFEST_NAME: &str = "trace.manifest";

/// Everything that can go wrong in the paged trace backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A filesystem operation failed.
    Io {
        /// Path the operation touched.
        path: String,
        /// Rendered OS error.
        message: String,
    },
    /// A segment or manifest failed validation (bad magic, checksum
    /// mismatch, truncation, malformed record encoding, foreign segment).
    Corrupt {
        /// Path of the offending file.
        path: String,
        /// What failed.
        reason: String,
    },
    /// A file carries a paged-format version this build cannot read.
    SchemaMismatch {
        /// Path of the offending file.
        path: String,
        /// Version found in the file.
        found: u32,
        /// Version this build writes and reads.
        expected: u32,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io { path, message } => write!(f, "trace io error at {path}: {message}"),
            TraceError::Corrupt { path, reason } => {
                write!(f, "corrupt trace file {path}: {reason}")
            }
            TraceError::SchemaMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "trace file {path} has paged-format version {found}, this build reads {expected}"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

impl TraceError {
    fn io(path: &Path, e: std::io::Error) -> TraceError {
        TraceError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        }
    }

    fn corrupt(path: &Path, reason: impl Into<String>) -> TraceError {
        TraceError::Corrupt {
            path: path.display().to_string(),
            reason: reason.into(),
        }
    }
}

/// FNV-1a over a byte slice (the checksum of segment and manifest files;
/// the same hash the result store uses for content addresses).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

static UNIQUE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Process-unique suffix for temp files and spill directories: pid plus a
/// monotonic counter, so concurrent writers (threads *or* processes sharing
/// a directory) can never collide on a temp path.
fn unique_suffix() -> String {
    format!(
        "{}-{}",
        std::process::id(),
        UNIQUE_COUNTER.fetch_add(1, Ordering::Relaxed)
    )
}

/// Durable atomic file write: write to a process-unique temp sibling,
/// `sync_all`, rename into place, then best-effort fsync the directory.
///
/// This is the shared hardened write path of the paged segment writer and
/// `moard_inject::store::ResultStore::save`.  The unique temp name makes
/// concurrent writers of the same destination race-free (last rename wins,
/// each rename installs a *complete* file), and the fsync-before-rename
/// guarantees a power loss after the rename can never persist a truncated
/// document behind a committed name.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("atomic-write");
    let tmp = path.with_file_name(format!(".{file_name}.{}.tmp", unique_suffix()));
    let write = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)
    })();
    if write.is_err() {
        let _ = std::fs::remove_file(&tmp);
        return write;
    }
    // Making the *rename* durable needs the directory entry flushed too;
    // failure here degrades durability, not correctness, so best-effort.
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Record codec: hand-rolled little-endian binary encoding with explicit u8
// code tables.  Every enum match is exhaustive in both directions, so adding
// an IR variant without extending the codec is a compile error, not silent
// corruption.
// ---------------------------------------------------------------------------

fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn type_code(ty: Type) -> u8 {
    match ty {
        Type::I1 => 0,
        Type::I8 => 1,
        Type::I16 => 2,
        Type::I32 => 3,
        Type::I64 => 4,
        Type::F32 => 5,
        Type::F64 => 6,
        Type::Ptr => 7,
    }
}

fn type_from(code: u8) -> Result<Type, String> {
    Ok(match code {
        0 => Type::I1,
        1 => Type::I8,
        2 => Type::I16,
        3 => Type::I32,
        4 => Type::I64,
        5 => Type::F32,
        6 => Type::F64,
        7 => Type::Ptr,
        _ => return Err(format!("unknown type code {code}")),
    })
}

fn bin_op_code(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::SDiv => 3,
        BinOp::UDiv => 4,
        BinOp::SRem => 5,
        BinOp::URem => 6,
        BinOp::FAdd => 7,
        BinOp::FSub => 8,
        BinOp::FMul => 9,
        BinOp::FDiv => 10,
        BinOp::FRem => 11,
        BinOp::Shl => 12,
        BinOp::LShr => 13,
        BinOp::AShr => 14,
        BinOp::And => 15,
        BinOp::Or => 16,
        BinOp::Xor => 17,
    }
}

fn bin_op_from(code: u8) -> Result<BinOp, String> {
    Ok(match code {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::SDiv,
        4 => BinOp::UDiv,
        5 => BinOp::SRem,
        6 => BinOp::URem,
        7 => BinOp::FAdd,
        8 => BinOp::FSub,
        9 => BinOp::FMul,
        10 => BinOp::FDiv,
        11 => BinOp::FRem,
        12 => BinOp::Shl,
        13 => BinOp::LShr,
        14 => BinOp::AShr,
        15 => BinOp::And,
        16 => BinOp::Or,
        17 => BinOp::Xor,
        _ => return Err(format!("unknown binop code {code}")),
    })
}

fn cmp_pred_code(pred: CmpPred) -> u8 {
    match pred {
        CmpPred::Eq => 0,
        CmpPred::Ne => 1,
        CmpPred::Slt => 2,
        CmpPred::Sle => 3,
        CmpPred::Sgt => 4,
        CmpPred::Sge => 5,
        CmpPred::Ult => 6,
        CmpPred::Ule => 7,
        CmpPred::Ugt => 8,
        CmpPred::Uge => 9,
        CmpPred::FOeq => 10,
        CmpPred::FOne => 11,
        CmpPred::FOlt => 12,
        CmpPred::FOle => 13,
        CmpPred::FOgt => 14,
        CmpPred::FOge => 15,
    }
}

fn cmp_pred_from(code: u8) -> Result<CmpPred, String> {
    Ok(match code {
        0 => CmpPred::Eq,
        1 => CmpPred::Ne,
        2 => CmpPred::Slt,
        3 => CmpPred::Sle,
        4 => CmpPred::Sgt,
        5 => CmpPred::Sge,
        6 => CmpPred::Ult,
        7 => CmpPred::Ule,
        8 => CmpPred::Ugt,
        9 => CmpPred::Uge,
        10 => CmpPred::FOeq,
        11 => CmpPred::FOne,
        12 => CmpPred::FOlt,
        13 => CmpPred::FOle,
        14 => CmpPred::FOgt,
        15 => CmpPred::FOge,
        _ => return Err(format!("unknown cmp predicate code {code}")),
    })
}

fn cast_kind_code(kind: CastKind) -> u8 {
    match kind {
        CastKind::Trunc => 0,
        CastKind::ZExt => 1,
        CastKind::SExt => 2,
        CastKind::FPTrunc => 3,
        CastKind::FPExt => 4,
        CastKind::FPToSI => 5,
        CastKind::SIToFP => 6,
        CastKind::BitCast => 7,
        CastKind::PtrToInt => 8,
        CastKind::IntToPtr => 9,
    }
}

fn cast_kind_from(code: u8) -> Result<CastKind, String> {
    Ok(match code {
        0 => CastKind::Trunc,
        1 => CastKind::ZExt,
        2 => CastKind::SExt,
        3 => CastKind::FPTrunc,
        4 => CastKind::FPExt,
        5 => CastKind::FPToSI,
        6 => CastKind::SIToFP,
        7 => CastKind::BitCast,
        8 => CastKind::PtrToInt,
        9 => CastKind::IntToPtr,
        _ => return Err(format!("unknown cast kind code {code}")),
    })
}

fn intrinsic_code(intr: Intrinsic) -> u8 {
    match intr {
        Intrinsic::Sqrt => 0,
        Intrinsic::Fabs => 1,
        Intrinsic::Sin => 2,
        Intrinsic::Cos => 3,
        Intrinsic::Exp => 4,
        Intrinsic::Log => 5,
        Intrinsic::Pow => 6,
        Intrinsic::Floor => 7,
        Intrinsic::Ceil => 8,
        Intrinsic::FMin => 9,
        Intrinsic::FMax => 10,
        Intrinsic::SMin => 11,
        Intrinsic::SMax => 12,
    }
}

fn intrinsic_from(code: u8) -> Result<Intrinsic, String> {
    Ok(match code {
        0 => Intrinsic::Sqrt,
        1 => Intrinsic::Fabs,
        2 => Intrinsic::Sin,
        3 => Intrinsic::Cos,
        4 => Intrinsic::Exp,
        5 => Intrinsic::Log,
        6 => Intrinsic::Pow,
        7 => Intrinsic::Floor,
        8 => Intrinsic::Ceil,
        9 => Intrinsic::FMin,
        10 => Intrinsic::FMax,
        11 => Intrinsic::SMin,
        12 => Intrinsic::SMax,
        _ => return Err(format!("unknown intrinsic code {code}")),
    })
}

fn encode_value(buf: &mut Vec<u8>, v: Value) {
    match v {
        Value::I1(b) => {
            put_u8(buf, 0);
            put_u8(buf, b as u8);
        }
        Value::I8(x) => {
            put_u8(buf, 1);
            put_u8(buf, x as u8);
        }
        Value::I16(x) => {
            put_u8(buf, 2);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        Value::I32(x) => {
            put_u8(buf, 3);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        Value::I64(x) => {
            put_u8(buf, 4);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        Value::F32(x) => {
            put_u8(buf, 5);
            put_u32(buf, x.to_bits());
        }
        Value::F64(x) => {
            put_u8(buf, 6);
            put_u64(buf, x.to_bits());
        }
        Value::Ptr(x) => {
            put_u8(buf, 7);
            put_u64(buf, x);
        }
    }
}

fn encode_source(buf: &mut Vec<u8>, s: ValueSource) {
    match s {
        ValueSource::Const => put_u8(buf, 0),
        ValueSource::GlobalBase => put_u8(buf, 1),
        ValueSource::Reg(RegId(r)) => {
            put_u8(buf, 2);
            put_u32(buf, r);
        }
    }
}

fn encode_element(buf: &mut Vec<u8>, e: Option<(ObjectId, u64)>) {
    match e {
        None => put_u8(buf, 0),
        Some((ObjectId(o), idx)) => {
            put_u8(buf, 1);
            put_u32(buf, o);
            put_u64(buf, idx);
        }
    }
}

fn encode_traced_val(buf: &mut Vec<u8>, v: &TracedVal) {
    encode_value(buf, v.value);
    encode_source(buf, v.source);
    encode_element(buf, v.element);
}

fn encode_op(buf: &mut Vec<u8>, op: &TraceOp) {
    match op {
        TraceOp::Bin {
            op,
            ty,
            lhs,
            rhs,
            result,
        } => {
            put_u8(buf, 0);
            put_u8(buf, bin_op_code(*op));
            put_u8(buf, type_code(*ty));
            encode_traced_val(buf, lhs);
            encode_traced_val(buf, rhs);
            encode_value(buf, *result);
        }
        TraceOp::Cmp {
            pred,
            lhs,
            rhs,
            result,
        } => {
            put_u8(buf, 1);
            put_u8(buf, cmp_pred_code(*pred));
            encode_traced_val(buf, lhs);
            encode_traced_val(buf, rhs);
            encode_value(buf, *result);
        }
        TraceOp::Cast {
            kind,
            to,
            src,
            result,
        } => {
            put_u8(buf, 2);
            put_u8(buf, cast_kind_code(*kind));
            put_u8(buf, type_code(*to));
            encode_traced_val(buf, src);
            encode_value(buf, *result);
        }
        TraceOp::Load {
            ty,
            addr,
            addr_src,
            element,
            result,
        } => {
            put_u8(buf, 3);
            put_u8(buf, type_code(*ty));
            put_u64(buf, *addr);
            encode_source(buf, *addr_src);
            encode_element(buf, *element);
            encode_value(buf, *result);
        }
        TraceOp::Store {
            ty,
            addr,
            addr_src,
            element,
            value,
            overwritten,
            value_depends_on_dest,
        } => {
            put_u8(buf, 4);
            put_u8(buf, type_code(*ty));
            put_u64(buf, *addr);
            encode_source(buf, *addr_src);
            encode_element(buf, *element);
            encode_traced_val(buf, value);
            encode_value(buf, *overwritten);
            put_u8(buf, *value_depends_on_dest as u8);
        }
        TraceOp::Gep {
            base,
            index,
            elem_size,
            result,
        } => {
            put_u8(buf, 5);
            encode_traced_val(buf, base);
            encode_traced_val(buf, index);
            put_u64(buf, *elem_size);
            encode_value(buf, *result);
        }
        TraceOp::Select {
            cond,
            then_v,
            else_v,
            result,
        } => {
            put_u8(buf, 6);
            encode_traced_val(buf, cond);
            encode_traced_val(buf, then_v);
            encode_traced_val(buf, else_v);
            encode_value(buf, *result);
        }
        TraceOp::Intrinsic { intr, args, result } => {
            put_u8(buf, 7);
            put_u8(buf, intrinsic_code(*intr));
            put_u32(buf, args.len() as u32);
            for a in args {
                encode_traced_val(buf, a);
            }
            encode_value(buf, *result);
        }
        TraceOp::Mov { src, result } => {
            put_u8(buf, 8);
            encode_traced_val(buf, src);
            encode_value(buf, *result);
        }
        TraceOp::Call {
            callee,
            args,
            callee_frame,
            param_regs,
        } => {
            put_u8(buf, 9);
            put_u32(buf, callee.0);
            put_u64(buf, *callee_frame);
            put_u32(buf, args.len() as u32);
            for a in args {
                encode_traced_val(buf, a);
            }
            put_u32(buf, param_regs.len() as u32);
            for RegId(r) in param_regs {
                put_u32(buf, *r);
            }
        }
        TraceOp::Ret {
            value,
            caller_frame,
            dst_in_caller,
        } => {
            put_u8(buf, 10);
            match value {
                None => put_u8(buf, 0),
                Some(v) => {
                    put_u8(buf, 1);
                    encode_traced_val(buf, v);
                }
            }
            match caller_frame {
                None => put_u8(buf, 0),
                Some(f) => {
                    put_u8(buf, 1);
                    put_u64(buf, *f);
                }
            }
            match dst_in_caller {
                None => put_u8(buf, 0),
                Some(RegId(r)) => {
                    put_u8(buf, 1);
                    put_u32(buf, *r);
                }
            }
        }
        TraceOp::CondBr { cond, taken } => {
            put_u8(buf, 11);
            encode_traced_val(buf, cond);
            put_u8(buf, *taken as u8);
        }
        TraceOp::Switch { value, taken_index } => {
            put_u8(buf, 12);
            encode_traced_val(buf, value);
            put_u64(buf, *taken_index as u64);
        }
    }
}

/// Encode one record (everything but its dynamic id, which is derived from
/// segment position at decode time).
fn encode_record(buf: &mut Vec<u8>, rec: &TraceRecord) {
    put_u64(buf, rec.frame);
    put_u32(buf, rec.func.0);
    put_u32(buf, rec.block.0);
    put_u32(buf, rec.inst);
    match rec.dst {
        None => put_u8(buf, 0),
        Some(RegId(r)) => {
            put_u8(buf, 1);
            put_u32(buf, r);
        }
    }
    encode_op(buf, &rec.op);
}

/// Bounds-checked little-endian reader over a byte slice.
struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| format!("truncated at byte {}", self.pos))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

fn decode_value(r: &mut ByteReader<'_>) -> Result<Value, String> {
    Ok(match r.u8()? {
        0 => Value::I1(r.u8()? != 0),
        1 => Value::I8(r.u8()? as i8),
        2 => Value::I16(i16::from_le_bytes(r.take(2)?.try_into().unwrap())),
        3 => Value::I32(r.u32()? as i32),
        4 => Value::I64(r.u64()? as i64),
        5 => Value::F32(f32::from_bits(r.u32()?)),
        6 => Value::F64(f64::from_bits(r.u64()?)),
        7 => Value::Ptr(r.u64()?),
        code => return Err(format!("unknown value code {code}")),
    })
}

fn decode_source(r: &mut ByteReader<'_>) -> Result<ValueSource, String> {
    Ok(match r.u8()? {
        0 => ValueSource::Const,
        1 => ValueSource::GlobalBase,
        2 => ValueSource::Reg(RegId(r.u32()?)),
        code => return Err(format!("unknown value-source code {code}")),
    })
}

fn decode_element(r: &mut ByteReader<'_>) -> Result<Option<(ObjectId, u64)>, String> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some((ObjectId(r.u32()?), r.u64()?)),
        code => return Err(format!("unknown element tag {code}")),
    })
}

fn decode_traced_val(r: &mut ByteReader<'_>) -> Result<TracedVal, String> {
    Ok(TracedVal {
        value: decode_value(r)?,
        source: decode_source(r)?,
        element: decode_element(r)?,
    })
}

fn decode_vals(r: &mut ByteReader<'_>) -> Result<Vec<TracedVal>, String> {
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return Err(format!("argument count {n} exceeds remaining bytes"));
    }
    (0..n).map(|_| decode_traced_val(r)).collect()
}

fn decode_op(r: &mut ByteReader<'_>) -> Result<TraceOp, String> {
    Ok(match r.u8()? {
        0 => TraceOp::Bin {
            op: bin_op_from(r.u8()?)?,
            ty: type_from(r.u8()?)?,
            lhs: decode_traced_val(r)?,
            rhs: decode_traced_val(r)?,
            result: decode_value(r)?,
        },
        1 => TraceOp::Cmp {
            pred: cmp_pred_from(r.u8()?)?,
            lhs: decode_traced_val(r)?,
            rhs: decode_traced_val(r)?,
            result: decode_value(r)?,
        },
        2 => TraceOp::Cast {
            kind: cast_kind_from(r.u8()?)?,
            to: type_from(r.u8()?)?,
            src: decode_traced_val(r)?,
            result: decode_value(r)?,
        },
        3 => TraceOp::Load {
            ty: type_from(r.u8()?)?,
            addr: r.u64()?,
            addr_src: decode_source(r)?,
            element: decode_element(r)?,
            result: decode_value(r)?,
        },
        4 => TraceOp::Store {
            ty: type_from(r.u8()?)?,
            addr: r.u64()?,
            addr_src: decode_source(r)?,
            element: decode_element(r)?,
            value: decode_traced_val(r)?,
            overwritten: decode_value(r)?,
            value_depends_on_dest: r.u8()? != 0,
        },
        5 => TraceOp::Gep {
            base: decode_traced_val(r)?,
            index: decode_traced_val(r)?,
            elem_size: r.u64()?,
            result: decode_value(r)?,
        },
        6 => TraceOp::Select {
            cond: decode_traced_val(r)?,
            then_v: decode_traced_val(r)?,
            else_v: decode_traced_val(r)?,
            result: decode_value(r)?,
        },
        7 => TraceOp::Intrinsic {
            intr: intrinsic_from(r.u8()?)?,
            args: decode_vals(r)?,
            result: decode_value(r)?,
        },
        8 => TraceOp::Mov {
            src: decode_traced_val(r)?,
            result: decode_value(r)?,
        },
        9 => {
            let callee = FuncId(r.u32()?);
            let callee_frame = r.u64()?;
            let args = decode_vals(r)?;
            let n = r.u32()? as usize;
            if n > r.remaining() {
                return Err(format!("param-reg count {n} exceeds remaining bytes"));
            }
            let param_regs = (0..n)
                .map(|_| Ok(RegId(r.u32()?)))
                .collect::<Result<Vec<_>, String>>()?;
            TraceOp::Call {
                callee,
                args,
                callee_frame,
                param_regs,
            }
        }
        10 => TraceOp::Ret {
            value: match r.u8()? {
                0 => None,
                1 => Some(decode_traced_val(r)?),
                code => return Err(format!("unknown option tag {code}")),
            },
            caller_frame: match r.u8()? {
                0 => None,
                1 => Some(r.u64()?),
                code => return Err(format!("unknown option tag {code}")),
            },
            dst_in_caller: match r.u8()? {
                0 => None,
                1 => Some(RegId(r.u32()?)),
                code => return Err(format!("unknown option tag {code}")),
            },
        },
        11 => TraceOp::CondBr {
            cond: decode_traced_val(r)?,
            taken: r.u8()? != 0,
        },
        12 => TraceOp::Switch {
            value: decode_traced_val(r)?,
            taken_index: r.u64()? as usize,
        },
        code => return Err(format!("unknown trace-op code {code}")),
    })
}

fn decode_record(r: &mut ByteReader<'_>, id: u64) -> Result<TraceRecord, String> {
    let frame = r.u64()?;
    let func = FuncId(r.u32()?);
    let block = BlockId(r.u32()?);
    let inst = r.u32()?;
    let dst = match r.u8()? {
        0 => None,
        1 => Some(RegId(r.u32()?)),
        code => return Err(format!("unknown option tag {code}")),
    };
    let op = decode_op(r)?;
    Ok(TraceRecord {
        id,
        frame,
        func,
        block,
        inst,
        dst,
        op,
    })
}

// ---------------------------------------------------------------------------
// Segment and manifest files
// ---------------------------------------------------------------------------

/// Location of one segment within the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SegmentMeta {
    first_id: u64,
    count: u32,
}

fn segment_file(dir: &Path, seg: usize) -> PathBuf {
    dir.join(format!("seg-{seg:06}.bin"))
}

/// Serialize one segment: header, offset table, record payload, checksum.
fn encode_segment(meta: u64, first_id: u64, offsets: &[u32], payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(40 + offsets.len() * 4 + payload.len());
    out.extend_from_slice(SEGMENT_MAGIC);
    let mut tail = Vec::new();
    put_u32(&mut tail, PAGED_FORMAT_VERSION);
    put_u64(&mut tail, meta);
    put_u64(&mut tail, first_id);
    put_u32(&mut tail, offsets.len() as u32);
    put_u32(&mut tail, payload.len() as u32);
    for &o in offsets {
        put_u32(&mut tail, o);
    }
    tail.extend_from_slice(payload);
    out.extend_from_slice(&tail);
    let checksum = fnv1a(&out);
    put_u64(&mut out, checksum);
    out
}

/// Read, validate, and decode one segment file into records.
fn decode_segment(
    path: &Path,
    expected_meta: u64,
    expected: SegmentMeta,
) -> Result<Vec<TraceRecord>, TraceError> {
    let bytes = std::fs::read(path).map_err(|e| TraceError::io(path, e))?;
    if bytes.len() < SEGMENT_MAGIC.len() + 8 {
        return Err(TraceError::corrupt(path, "file shorter than header"));
    }
    let (body, checksum_bytes) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(checksum_bytes.try_into().unwrap());
    if fnv1a(body) != stored {
        return Err(TraceError::corrupt(path, "checksum mismatch"));
    }
    if &body[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return Err(TraceError::corrupt(path, "bad magic"));
    }
    let mut r = ByteReader::new(&body[SEGMENT_MAGIC.len()..]);
    let fail = |reason: String| TraceError::corrupt(path, reason);
    let version = r.u32().map_err(fail)?;
    if version != PAGED_FORMAT_VERSION {
        return Err(TraceError::SchemaMismatch {
            path: path.display().to_string(),
            found: version,
            expected: PAGED_FORMAT_VERSION,
        });
    }
    let meta = r.u64().map_err(fail)?;
    if meta != expected_meta {
        return Err(TraceError::corrupt(
            path,
            "segment belongs to a different trace (meta fingerprint mismatch)",
        ));
    }
    let first_id = r.u64().map_err(fail)?;
    let count = r.u32().map_err(fail)?;
    let payload_len = r.u32().map_err(fail)? as usize;
    if first_id != expected.first_id || count != expected.count {
        return Err(TraceError::corrupt(
            path,
            format!(
                "segment covers records [{first_id}, +{count}), manifest expects \
                 [{}, +{})",
                expected.first_id, expected.count
            ),
        ));
    }
    let mut offsets = Vec::with_capacity(count as usize);
    for _ in 0..count {
        offsets.push(r.u32().map_err(fail)? as usize);
    }
    let payload = r.take(payload_len).map_err(fail)?;
    if r.remaining() != 0 {
        return Err(TraceError::corrupt(path, "trailing bytes after payload"));
    }
    let mut records = Vec::with_capacity(count as usize);
    for (i, &start) in offsets.iter().enumerate() {
        let end = offsets.get(i + 1).copied().unwrap_or(payload.len());
        if start > end || end > payload.len() {
            return Err(TraceError::corrupt(
                path,
                format!("record {i} has an out-of-range offset"),
            ));
        }
        let mut rr = ByteReader::new(&payload[start..end]);
        let rec = decode_record(&mut rr, first_id + i as u64)
            .map_err(|e| TraceError::corrupt(path, format!("record {i}: {e}")))?;
        if rr.remaining() != 0 {
            return Err(TraceError::corrupt(
                path,
                format!("record {i} has trailing bytes"),
            ));
        }
        records.push(rec);
    }
    Ok(records)
}

fn encode_manifest(
    meta: u64,
    segment_records: usize,
    total: u64,
    segments: &[SegmentMeta],
    index: &TraceIndex,
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MANIFEST_MAGIC);
    put_u32(&mut out, PAGED_FORMAT_VERSION);
    put_u64(&mut out, meta);
    put_u32(&mut out, segment_records as u32);
    put_u64(&mut out, total);
    put_u32(&mut out, segments.len() as u32);
    for seg in segments {
        put_u64(&mut out, seg.first_id);
        put_u32(&mut out, seg.count);
    }
    let slots = index.object_slots();
    put_u32(&mut out, slots as u32);
    for slot in 0..slots {
        let ids = index.ids(ObjectId(slot as u32));
        put_u64(&mut out, ids.len() as u64);
        for &id in ids {
            put_u64(&mut out, id);
        }
    }
    let checksum = fnv1a(&out);
    put_u64(&mut out, checksum);
    out
}

struct Manifest {
    meta: u64,
    segment_records: usize,
    total: u64,
    segments: Vec<SegmentMeta>,
    index: TraceIndex,
}

fn decode_manifest(path: &Path) -> Result<Manifest, TraceError> {
    let bytes = std::fs::read(path).map_err(|e| TraceError::io(path, e))?;
    if bytes.len() < MANIFEST_MAGIC.len() + 8 {
        return Err(TraceError::corrupt(path, "file shorter than header"));
    }
    let (body, checksum_bytes) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(checksum_bytes.try_into().unwrap());
    if fnv1a(body) != stored {
        return Err(TraceError::corrupt(path, "checksum mismatch"));
    }
    if &body[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
        return Err(TraceError::corrupt(path, "bad magic"));
    }
    let mut r = ByteReader::new(&body[MANIFEST_MAGIC.len()..]);
    let fail = |reason: String| TraceError::corrupt(path, reason);
    let version = r.u32().map_err(fail)?;
    if version != PAGED_FORMAT_VERSION {
        return Err(TraceError::SchemaMismatch {
            path: path.display().to_string(),
            found: version,
            expected: PAGED_FORMAT_VERSION,
        });
    }
    let meta = r.u64().map_err(fail)?;
    let segment_records = r.u32().map_err(fail)? as usize;
    if segment_records == 0 {
        return Err(TraceError::corrupt(path, "segment_records is zero"));
    }
    let total = r.u64().map_err(fail)?;
    let seg_count = r.u32().map_err(fail)? as usize;
    let mut segments = Vec::with_capacity(seg_count);
    let mut covered = 0u64;
    for i in 0..seg_count {
        let first_id = r.u64().map_err(fail)?;
        let count = r.u32().map_err(fail)?;
        if first_id != covered || count == 0 {
            return Err(TraceError::corrupt(
                path,
                format!("segment {i} does not continue the record sequence"),
            ));
        }
        if i + 1 < seg_count && count as usize != segment_records {
            return Err(TraceError::corrupt(
                path,
                format!("non-final segment {i} is not full"),
            ));
        }
        covered += count as u64;
        segments.push(SegmentMeta { first_id, count });
    }
    if covered != total {
        return Err(TraceError::corrupt(
            path,
            format!("segments cover {covered} records, manifest claims {total}"),
        ));
    }
    let slots = r.u32().map_err(fail)? as usize;
    let mut index = TraceIndex::default();
    for slot in 0..slots {
        let n = r.u64().map_err(fail)? as usize;
        if n.checked_mul(8).is_none_or(|b| b > r.remaining()) {
            return Err(TraceError::corrupt(
                path,
                format!("object {slot} id list exceeds remaining bytes"),
            ));
        }
        let mut ids = Vec::with_capacity(n);
        let mut prev: Option<u64> = None;
        for _ in 0..n {
            let id = r.u64().map_err(fail)?;
            if id >= total || prev.is_some_and(|p| p >= id) {
                return Err(TraceError::corrupt(
                    path,
                    format!("object {slot} index is not strictly increasing in range"),
                ));
            }
            prev = Some(id);
            ids.push(id);
        }
        index.set_ids(ObjectId(slot as u32), ids);
    }
    if r.remaining() != 0 {
        return Err(TraceError::corrupt(path, "trailing bytes after index"));
    }
    Ok(Manifest {
        meta,
        segment_records,
        total,
        segments,
        index,
    })
}

// ---------------------------------------------------------------------------
// Spill-directory lifecycle
// ---------------------------------------------------------------------------

/// Deletes its directory on drop (transient spill semantics).  Moved from
/// the writer into the finished [`PagedTrace`], so the spill lives exactly
/// as long as something can read it.
#[derive(Debug)]
struct DirGuard {
    path: PathBuf,
}

impl Drop for DirGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Streaming writer for the paged backend: records are encoded into the
/// current segment buffer as the VM emits them and flushed to disk every
/// `segment_records` records, so tracing memory stays bounded by one
/// segment regardless of trace length.
///
/// `push` is deliberately infallible (it sits on the VM's per-operation hot
/// path): the first I/O error is buffered, subsequent pushes become no-ops,
/// and [`PagedTraceWriter::finish`] surfaces the error.
pub struct PagedTraceWriter {
    dir: PathBuf,
    guard: Option<DirGuard>,
    segment_records: usize,
    meta: u64,
    index: TraceIndex,
    segments: Vec<SegmentMeta>,
    offsets: Vec<u32>,
    payload: Vec<u8>,
    segment_first_id: u64,
    next_id: u64,
    error: Option<TraceError>,
}

impl PagedTraceWriter {
    /// Create a writer spilling into a fresh process-unique subdirectory of
    /// `base` (or the system temp directory).  The directory is removed
    /// when the finished [`PagedTrace`] is dropped — or by the writer's own
    /// drop if `finish` is never reached.
    pub fn create(
        base: Option<&Path>,
        segment_records: usize,
    ) -> Result<PagedTraceWriter, TraceError> {
        let base = match base {
            Some(b) => b.to_path_buf(),
            None => std::env::temp_dir(),
        };
        let dir = base.join(format!("moard-trace-{}", unique_suffix()));
        std::fs::create_dir_all(&dir).map_err(|e| TraceError::io(&dir, e))?;
        let meta = fnv1a(dir.display().to_string().as_bytes()) ^ unique_meta_salt();
        Ok(PagedTraceWriter {
            guard: Some(DirGuard { path: dir.clone() }),
            dir,
            segment_records: segment_records.max(1),
            meta,
            index: TraceIndex::default(),
            segments: Vec::new(),
            offsets: Vec::new(),
            payload: Vec::new(),
            segment_first_id: 0,
            next_id: 0,
            error: None,
        })
    }

    /// The spill directory this writer fills.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Append a record.  Same ordering contract as [`Trace::push`].
    pub fn push(&mut self, record: TraceRecord) {
        if self.error.is_some() {
            return;
        }
        assert_eq!(
            record.id, self.next_id,
            "records must be appended in dynamic-id order"
        );
        let id = record.id;
        let index = &mut self.index;
        record.touched_objects(|obj| index.note(obj, id));
        self.offsets.push(self.payload.len() as u32);
        encode_record(&mut self.payload, &record);
        self.next_id += 1;
        if self.offsets.len() >= self.segment_records {
            self.flush_segment();
        }
    }

    fn flush_segment(&mut self) {
        if self.offsets.is_empty() {
            return;
        }
        let seg = self.segments.len();
        let bytes = encode_segment(
            self.meta,
            self.segment_first_id,
            &self.offsets,
            &self.payload,
        );
        let path = segment_file(&self.dir, seg);
        if let Err(e) = atomic_write(&path, &bytes) {
            self.error = Some(TraceError::io(&path, e));
            return;
        }
        self.segments.push(SegmentMeta {
            first_id: self.segment_first_id,
            count: self.offsets.len() as u32,
        });
        self.segment_first_id = self.next_id;
        self.offsets.clear();
        self.payload.clear();
    }

    /// Flush the final partial segment, persist the manifest, and validate
    /// the result by re-opening it — the finished [`PagedTrace`] owns (and
    /// will remove) the spill directory.
    pub fn finish(mut self) -> Result<PagedTrace, TraceError> {
        self.flush_segment();
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let manifest = encode_manifest(
            self.meta,
            self.segment_records,
            self.next_id,
            &self.segments,
            &self.index,
        );
        let path = self.dir.join(MANIFEST_NAME);
        atomic_write(&path, &manifest).map_err(|e| TraceError::io(&path, e))?;
        // Round-trip through the reader path: what was just persisted is
        // what every future open will see.
        PagedTrace::open_with_guard(self.dir.clone(), self.guard.take())
    }
}

/// Extra entropy for the meta fingerprint beyond the (already unique) spill
/// path: pid and a process-wide counter.
fn unique_meta_salt() -> u64 {
    let pid = std::process::id() as u64;
    let n = UNIQUE_COUNTER.fetch_add(1, Ordering::Relaxed);
    pid.rotate_left(32) ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

// ---------------------------------------------------------------------------
// Reader side
// ---------------------------------------------------------------------------

/// A completed paged trace: manifest (segment table + per-object index)
/// resident in memory, record segments decoded lazily per reader.
pub struct PagedTrace {
    dir: PathBuf,
    /// Held only for its Drop (removes the spill directory).
    _guard: Option<DirGuard>,
    meta: u64,
    segment_records: usize,
    total: u64,
    segments: Vec<SegmentMeta>,
    index: TraceIndex,
    poison: Mutex<Option<TraceError>>,
}

impl std::fmt::Debug for PagedTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedTrace")
            .field("dir", &self.dir)
            .field("total", &self.total)
            .field("segments", &self.segments.len())
            .finish()
    }
}

impl PagedTrace {
    /// Open an existing spill directory (manifest validation only; segments
    /// decode lazily).  The directory is *not* removed on drop — use
    /// [`TraceBuilder::finish`] for owned transient spills.
    pub fn open(dir: impl Into<PathBuf>) -> Result<PagedTrace, TraceError> {
        PagedTrace::open_with_guard(dir.into(), None)
    }

    fn open_with_guard(dir: PathBuf, guard: Option<DirGuard>) -> Result<PagedTrace, TraceError> {
        let manifest = decode_manifest(&dir.join(MANIFEST_NAME))?;
        Ok(PagedTrace {
            dir,
            _guard: guard,
            meta: manifest.meta,
            segment_records: manifest.segment_records,
            total: manifest.total,
            segments: manifest.segments,
            index: manifest.index,
            poison: Mutex::new(None),
        })
    }

    /// The spill directory holding this trace's files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records per (non-final) segment.
    pub fn segment_records(&self) -> usize {
        self.segment_records
    }

    /// Number of on-disk segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Segment index covering dynamic id `id` (which must be `< total`).
    fn segment_of(&self, id: u64) -> usize {
        (id / self.segment_records as u64) as usize
    }

    fn poison_with(&self, e: TraceError) {
        let mut slot = self.poison.lock().expect("trace poison slot");
        if slot.is_none() {
            *slot = Some(e);
        }
    }

    /// Decode every segment once, surfacing the first typed error — an
    /// integrity check over the whole spill (tests, diagnostics).
    pub fn verify(&self) -> Result<(), TraceError> {
        for (i, seg) in self.segments.iter().enumerate() {
            decode_segment(&segment_file(&self.dir, i), self.meta, *seg)?;
        }
        Ok(())
    }
}

impl TraceStorage for PagedTrace {
    fn len(&self) -> u64 {
        self.total
    }

    fn index(&self) -> &TraceIndex {
        &self.index
    }

    fn stats(&self) -> TraceStats {
        TraceStats {
            records: self.total,
            indexed_objects: self.index.indexed_objects(),
            index_entries: self.index.entries(),
        }
    }

    fn backend_name(&self) -> &'static str {
        "paged"
    }

    fn new_reader(&self) -> Box<dyn TraceRead + '_> {
        Box::new(PagedReader {
            trace: self,
            cache: Vec::with_capacity(READER_SEGMENT_CACHE),
            tick: 0,
        })
    }

    fn poisoned(&self) -> Option<TraceError> {
        self.poison.lock().expect("trace poison slot").clone()
    }
}

/// One decoded segment held by a reader.
struct CachedSegment {
    seg: usize,
    tick: u64,
    records: Vec<TraceRecord>,
}

/// A reader over a [`PagedTrace`]: a small LRU of decoded segments.  Not
/// shared across threads — each cursor/worker creates its own, all borrowing
/// the same immutable trace.
///
/// Decode amortization is what makes this backend pay off under lane-batched
/// replay: a `BatchReplayCursor` walking up to 64 fault lanes issues one
/// `run_from` per trace position, so each decoded segment here serves up to
/// 64 replays instead of one before it can be evicted.
pub struct PagedReader<'t> {
    trace: &'t PagedTrace,
    cache: Vec<CachedSegment>,
    tick: u64,
}

impl PagedReader<'_> {
    /// Slot of `seg` in the cache, decoding (and possibly evicting) if
    /// absent.  `None` on decode failure (the trace is then poisoned).
    fn ensure(&mut self, seg: usize) -> Option<usize> {
        self.tick += 1;
        if let Some(slot) = self.cache.iter().position(|c| c.seg == seg) {
            self.cache[slot].tick = self.tick;
            return Some(slot);
        }
        let meta = self.trace.segments[seg];
        let records =
            match decode_segment(&segment_file(&self.trace.dir, seg), self.trace.meta, meta) {
                Ok(records) => records,
                Err(e) => {
                    self.trace.poison_with(e);
                    return None;
                }
            };
        let entry = CachedSegment {
            seg,
            tick: self.tick,
            records,
        };
        if self.cache.len() < READER_SEGMENT_CACHE {
            self.cache.push(entry);
            Some(self.cache.len() - 1)
        } else {
            let evict = self
                .cache
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| c.tick)
                .map(|(i, _)| i)
                .expect("cache is non-empty");
            self.cache[evict] = entry;
            Some(evict)
        }
    }
}

impl TraceRead for PagedReader<'_> {
    fn run_from(&mut self, id: u64) -> &[TraceRecord] {
        if id >= self.trace.total {
            return &[];
        }
        let seg = self.trace.segment_of(id);
        let Some(slot) = self.ensure(seg) else {
            return &[];
        };
        let first = self.trace.segments[seg].first_id;
        &self.cache[slot].records[(id - first) as usize..]
    }
}

// ---------------------------------------------------------------------------
// Backend selection, builder, and the unified trace value
// ---------------------------------------------------------------------------

/// Which trace backend an execution should record into — the value behind
/// the `--trace-backend memory|paged[:DIR]` CLI flag.
///
/// The backend is an *execution-resource* choice, never an analysis input:
/// it does not enter any configuration or study fingerprint, and reports are
/// bit-identical across backends.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TraceBackendSpec {
    /// Everything resident in memory (the default; fastest, bounded by RAM).
    #[default]
    Memory,
    /// Fixed-size record segments spilled to disk, decoded lazily per
    /// replay window.
    Paged {
        /// Base directory for the per-trace spill subdirectory; `None` uses
        /// the system temp directory.
        dir: Option<PathBuf>,
        /// Records per segment ([`DEFAULT_SEGMENT_RECORDS`] by default;
        /// tests shrink it to place seams under specific sites).
        segment_records: usize,
    },
}

impl TraceBackendSpec {
    /// The paged backend with default segment size, spilling under the
    /// system temp directory.
    pub fn paged() -> TraceBackendSpec {
        TraceBackendSpec::Paged {
            dir: None,
            segment_records: DEFAULT_SEGMENT_RECORDS,
        }
    }

    /// Parse the CLI form: `memory`, `paged`, or `paged:DIR`.
    pub fn parse(text: &str) -> Result<TraceBackendSpec, String> {
        if text == "memory" {
            return Ok(TraceBackendSpec::Memory);
        }
        if text == "paged" {
            return Ok(TraceBackendSpec::paged());
        }
        if let Some(dir) = text.strip_prefix("paged:") {
            if dir.is_empty() {
                return Err("`paged:` needs a directory after the colon".into());
            }
            return Ok(TraceBackendSpec::Paged {
                dir: Some(PathBuf::from(dir)),
                segment_records: DEFAULT_SEGMENT_RECORDS,
            });
        }
        Err(format!(
            "unknown trace backend `{text}` (expected `memory`, `paged`, or `paged:DIR`)"
        ))
    }

    /// Canonical rendering (round-trips through [`TraceBackendSpec::parse`]
    /// for default segment sizes).
    pub fn describe(&self) -> String {
        match self {
            TraceBackendSpec::Memory => "memory".into(),
            TraceBackendSpec::Paged { dir: None, .. } => "paged".into(),
            TraceBackendSpec::Paged { dir: Some(d), .. } => format!("paged:{}", d.display()),
        }
    }
}

/// A trace under construction — the sink the VM pushes records into.
pub enum TraceBuilder {
    /// Building an in-memory [`Trace`].
    Memory(Trace),
    /// Streaming into a [`PagedTraceWriter`].
    Paged(PagedTraceWriter),
}

impl TraceBuilder {
    /// A builder for the given backend.  Creating the paged spill directory
    /// can fail; the memory builder never does.
    pub fn for_spec(spec: &TraceBackendSpec) -> Result<TraceBuilder, TraceError> {
        match spec {
            TraceBackendSpec::Memory => Ok(TraceBuilder::Memory(Trace::default())),
            TraceBackendSpec::Paged {
                dir,
                segment_records,
            } => Ok(TraceBuilder::Paged(PagedTraceWriter::create(
                dir.as_deref(),
                *segment_records,
            )?)),
        }
    }

    /// Append a record (same contract as [`Trace::push`]).  Infallible on
    /// the VM hot path; paged I/O errors surface in
    /// [`TraceBuilder::finish`].
    pub fn push(&mut self, record: TraceRecord) {
        match self {
            TraceBuilder::Memory(trace) => trace.push(record),
            TraceBuilder::Paged(writer) => writer.push(record),
        }
    }

    /// Complete the trace.
    pub fn finish(self) -> Result<TraceData, TraceError> {
        match self {
            TraceBuilder::Memory(trace) => Ok(TraceData::Memory(trace)),
            TraceBuilder::Paged(writer) => Ok(TraceData::Paged(writer.finish()?)),
        }
    }
}

/// A completed trace from either backend.  This is what the analysis
/// harness holds; it coerces to `&dyn TraceStorage` wherever the analysis
/// layers want one.
#[derive(Debug)]
pub enum TraceData {
    /// In-memory backend.
    Memory(Trace),
    /// Paged on-disk backend.
    Paged(PagedTrace),
}

impl TraceData {
    /// The storage trait object for this trace.
    pub fn storage(&self) -> &dyn TraceStorage {
        match self {
            TraceData::Memory(t) => t,
            TraceData::Paged(t) => t,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        TraceStorage::len(self.storage()) as usize
    }

    /// True if the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Summary statistics of the trace and its index.
    pub fn stats(&self) -> TraceStats {
        self.storage().stats()
    }

    /// The per-object record-id index.
    pub fn index(&self) -> &TraceIndex {
        self.storage().index()
    }

    /// Record ids touching `obj`, in execution order.
    pub fn touching_ids(&self, obj: ObjectId) -> &[u64] {
        self.index().ids(obj)
    }

    /// Backend name (`"memory"` / `"paged"`).
    pub fn backend_name(&self) -> &'static str {
        self.storage().backend_name()
    }

    /// One record by dynamic id, cloned out of the backend.  (Replay-loop
    /// code should hold a [`TraceRead`] reader instead; this is for
    /// occasional point lookups.)
    pub fn record(&self, id: u64) -> Option<TraceRecord> {
        match self {
            TraceData::Memory(t) => t.record(id).cloned(),
            TraceData::Paged(t) => t.new_reader().fetch(id),
        }
    }

    /// The in-memory trace, when this is the memory backend.
    pub fn as_memory(&self) -> Option<&Trace> {
        match self {
            TraceData::Memory(t) => Some(t),
            TraceData::Paged(_) => None,
        }
    }

    /// The paged trace, when this is the paged backend.
    pub fn as_paged(&self) -> Option<&PagedTrace> {
        match self {
            TraceData::Memory(_) => None,
            TraceData::Paged(t) => Some(t),
        }
    }
}

impl From<Trace> for TraceData {
    fn from(trace: Trace) -> TraceData {
        TraceData::Memory(trace)
    }
}

impl TraceStorage for TraceData {
    fn len(&self) -> u64 {
        TraceStorage::len(self.storage())
    }

    fn index(&self) -> &TraceIndex {
        self.storage().index()
    }

    fn stats(&self) -> TraceStats {
        self.storage().stats()
    }

    fn backend_name(&self) -> &'static str {
        self.storage().backend_name()
    }

    fn new_reader(&self) -> Box<dyn TraceRead + '_> {
        self.storage().new_reader()
    }

    fn poisoned(&self) -> Option<TraceError> {
        self.storage().poisoned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records(n: u64) -> Vec<TraceRecord> {
        (0..n)
            .map(|id| {
                let op = match id % 5 {
                    0 => TraceOp::Bin {
                        op: BinOp::FAdd,
                        ty: Type::F64,
                        lhs: TracedVal {
                            value: Value::F64(id as f64),
                            source: ValueSource::Reg(RegId(id as u32)),
                            element: Some((ObjectId(0), id)),
                        },
                        rhs: TracedVal::constant(Value::F64(2.0)),
                        result: Value::F64(id as f64 + 2.0),
                    },
                    1 => TraceOp::Load {
                        ty: Type::F64,
                        addr: 0x1000 + id * 8,
                        addr_src: ValueSource::Const,
                        element: Some((ObjectId(1), id / 2)),
                        result: Value::F64(1.5),
                    },
                    2 => TraceOp::Store {
                        ty: Type::I32,
                        addr: 0x2000,
                        addr_src: ValueSource::Reg(RegId(3)),
                        element: Some((ObjectId(0), 7)),
                        value: TracedVal::constant(Value::I32(-9)),
                        overwritten: Value::I32(4),
                        value_depends_on_dest: id % 2 == 0,
                    },
                    3 => TraceOp::Intrinsic {
                        intr: Intrinsic::Pow,
                        args: vec![
                            TracedVal::constant(Value::F64(2.0)),
                            TracedVal::constant(Value::F64(10.0)),
                        ],
                        result: Value::F64(1024.0),
                    },
                    _ => TraceOp::Ret {
                        value: Some(TracedVal::constant(Value::I1(true))),
                        caller_frame: Some(id),
                        dst_in_caller: Some(RegId(9)),
                    },
                };
                TraceRecord {
                    id,
                    frame: id / 3,
                    func: FuncId(1),
                    block: BlockId(2),
                    inst: id as u32,
                    dst: if id % 2 == 0 {
                        Some(RegId(id as u32))
                    } else {
                        None
                    },
                    op,
                }
            })
            .collect()
    }

    fn build_paged(records: &[TraceRecord], segment_records: usize) -> PagedTrace {
        let mut builder = TraceBuilder::for_spec(&TraceBackendSpec::Paged {
            dir: None,
            segment_records,
        })
        .unwrap();
        for rec in records {
            builder.push(rec.clone());
        }
        match builder.finish().unwrap() {
            TraceData::Paged(t) => t,
            TraceData::Memory(_) => unreachable!(),
        }
    }

    #[test]
    fn record_codec_round_trips() {
        for rec in sample_records(25) {
            let mut buf = Vec::new();
            encode_record(&mut buf, &rec);
            let mut r = ByteReader::new(&buf);
            let back = decode_record(&mut r, rec.id).unwrap();
            assert_eq!(back, rec);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn paged_trace_round_trips_records_index_and_stats() {
        let records = sample_records(100);
        let memory = Trace::from_records(records.iter().cloned());
        let paged = build_paged(&records, 16);
        assert_eq!(paged.segment_count(), 7);
        assert_eq!(TraceStorage::len(&paged), 100);
        assert_eq!(paged.stats(), memory.stats());
        assert_eq!(
            paged.index().ids(ObjectId(0)),
            memory.index().ids(ObjectId(0))
        );
        assert_eq!(
            paged.index().ids(ObjectId(1)),
            memory.index().ids(ObjectId(1))
        );
        let mut reader = paged.new_reader();
        for id in 0..100u64 {
            assert_eq!(reader.fetch(id).unwrap(), records[id as usize], "id {id}");
        }
        assert!(reader.fetch(100).is_none());
        paged.verify().unwrap();
        assert!(paged.poisoned().is_none());
    }

    #[test]
    fn runs_cover_segments_and_clamp_at_the_end() {
        let records = sample_records(40);
        let paged = build_paged(&records, 16);
        let mut reader = paged.new_reader();
        // Mid-segment start: the run reaches the segment seam, not past it.
        let run = reader.run_from(10);
        assert_eq!(run.len(), 6);
        assert_eq!(run[0].id, 10);
        // Seam start: the next segment decodes.
        let run = reader.run_from(16);
        assert_eq!(run.len(), 16);
        assert_eq!(run[0].id, 16);
        // Final short segment.
        let run = reader.run_from(33);
        assert_eq!(run.len(), 7);
        // Past the end: empty, not a panic.
        assert!(reader.run_from(40).is_empty());
        assert!(reader.run_from(u64::MAX).is_empty());
    }

    #[test]
    fn memory_reader_matches_paged_reader() {
        let records = sample_records(50);
        let memory = Trace::from_records(records.iter().cloned());
        let paged = build_paged(&records, 8);
        let mut mem_reader = memory.new_reader();
        let mut paged_reader = paged.new_reader();
        for start in [0u64, 7, 8, 9, 23, 49, 50] {
            let mut mem_walk = Vec::new();
            let mut pos = start;
            loop {
                let run = mem_reader.run_from(pos);
                if run.is_empty() {
                    break;
                }
                mem_walk.extend(run.iter().cloned());
                pos += run.len() as u64;
            }
            let mut paged_walk = Vec::new();
            let mut pos = start;
            loop {
                let run = paged_reader.run_from(pos);
                if run.is_empty() {
                    break;
                }
                paged_walk.extend(run.iter().cloned());
                pos += run.len() as u64;
            }
            assert_eq!(mem_walk, paged_walk, "start {start}");
        }
    }

    #[test]
    fn corrupt_segment_is_a_typed_error_and_poisons_readers() {
        let records = sample_records(48);
        let paged = build_paged(&records, 16);
        // Flip one payload byte of the middle segment.
        let path = segment_file(paged.dir(), 1);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        // verify() surfaces the typed error directly…
        match paged.verify() {
            Err(TraceError::Corrupt { path: p, .. }) => assert!(p.contains("seg-000001")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // …while the infallible reader path yields an empty run and poisons.
        let mut reader = paged.new_reader();
        assert_eq!(reader.run_from(0).len(), 16, "first segment is intact");
        assert!(reader.run_from(16).is_empty());
        assert!(matches!(paged.poisoned(), Some(TraceError::Corrupt { .. })));
    }

    #[test]
    fn truncated_segment_and_manifest_are_typed_errors() {
        let records = sample_records(20);
        let paged = build_paged(&records, 16);
        let seg0 = segment_file(paged.dir(), 0);
        let bytes = std::fs::read(&seg0).unwrap();
        std::fs::write(&seg0, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(paged.verify(), Err(TraceError::Corrupt { .. })));
        // A truncated manifest refuses to open.
        let manifest = paged.dir().join(MANIFEST_NAME);
        let bytes = std::fs::read(&manifest).unwrap();
        std::fs::write(&manifest, &bytes[..bytes.len() - 3]).unwrap();
        let dir = paged.dir().to_path_buf();
        assert!(matches!(
            PagedTrace::open(&dir),
            Err(TraceError::Corrupt { .. })
        ));
    }

    #[test]
    fn future_format_versions_are_schema_mismatches() {
        let records = sample_records(4);
        let paged = build_paged(&records, 16);
        let path = segment_file(paged.dir(), 0);
        let mut bytes = std::fs::read(&path).unwrap();
        // Bump the version field (right after the magic), refresh checksum.
        bytes[8] = 99;
        let body_len = bytes.len() - 8;
        let checksum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            paged.verify(),
            Err(TraceError::SchemaMismatch { found: 99, .. })
        ));
    }

    #[test]
    fn spill_directory_is_removed_on_drop() {
        let paged = build_paged(&sample_records(10), 4);
        let dir = paged.dir().to_path_buf();
        assert!(dir.exists());
        drop(paged);
        assert!(!dir.exists());
    }

    #[test]
    fn empty_trace_round_trips() {
        let builder = TraceBuilder::for_spec(&TraceBackendSpec::paged()).unwrap();
        let data = builder.finish().unwrap();
        assert_eq!(data.len(), 0);
        assert!(data.is_empty());
        assert!(data.new_reader().run_from(0).is_empty());
    }

    #[test]
    fn backend_spec_parses_and_describes() {
        assert_eq!(
            TraceBackendSpec::parse("memory").unwrap(),
            TraceBackendSpec::Memory
        );
        assert_eq!(
            TraceBackendSpec::parse("paged").unwrap(),
            TraceBackendSpec::paged()
        );
        assert_eq!(
            TraceBackendSpec::parse("paged:/tmp/spill").unwrap(),
            TraceBackendSpec::Paged {
                dir: Some(PathBuf::from("/tmp/spill")),
                segment_records: DEFAULT_SEGMENT_RECORDS,
            }
        );
        assert!(TraceBackendSpec::parse("paged:").is_err());
        assert!(TraceBackendSpec::parse("disk").is_err());
        for text in ["memory", "paged", "paged:/tmp/spill"] {
            assert_eq!(
                TraceBackendSpec::parse(text).unwrap().describe(),
                text,
                "describe round-trips"
            );
        }
        assert_eq!(TraceBackendSpec::default(), TraceBackendSpec::Memory);
    }

    #[test]
    fn atomic_writes_are_unique_per_writer_and_leave_no_temps() {
        let dir = std::env::temp_dir().join(format!("moard-atomic-test-{}", unique_suffix()));
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join("doc.bin");
        // Concurrent writers of the same destination never collide on a
        // temp path: every write installs one complete document.
        std::thread::scope(|scope| {
            for i in 0..8u8 {
                let target = &target;
                scope.spawn(move || {
                    atomic_write(target, &[i; 512]).unwrap();
                });
            }
        });
        let bytes = std::fs::read(&target).unwrap();
        assert_eq!(bytes.len(), 512);
        assert!(bytes.iter().all(|&b| b == bytes[0]), "no torn mix");
        let temps = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .count();
        assert_eq!(temps, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_data_point_lookup_and_backend_names() {
        let records = sample_records(12);
        let memory = TraceData::Memory(Trace::from_records(records.iter().cloned()));
        let paged = TraceData::Paged(build_paged(&records, 4));
        assert_eq!(memory.backend_name(), "memory");
        assert_eq!(paged.backend_name(), "paged");
        for data in [&memory, &paged] {
            assert_eq!(data.len(), 12);
            assert_eq!(data.record(5).unwrap(), records[5]);
            assert!(data.record(12).is_none());
        }
        assert_eq!(memory.stats(), paged.stats());
        assert_eq!(
            memory.touching_ids(ObjectId(0)),
            paged.touching_ids(ObjectId(0))
        );
    }
}
