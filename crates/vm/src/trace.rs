//! Dynamic instruction trace.
//!
//! One [`TraceRecord`] is emitted per executed IR operation.  Each record
//! carries everything the aDVF analysis needs without re-running the program:
//! the opcode and its semantic class, every consumed operand *value*, the
//! result value, the memory addresses touched, which data-object element (if
//! any) each consumed value corresponds to, and enough register/frame
//! information to replay error propagation forward through the trace.

use crate::objects::ObjectId;
use moard_ir::{BinOp, BlockId, CastKind, CmpPred, FuncId, Intrinsic, RegId, Type, Value};

/// Where a consumed value came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueSource {
    /// A virtual register of the executing frame.
    Reg(RegId),
    /// An immediate constant.
    Const,
    /// The base address of a global (always a pointer).
    GlobalBase,
}

/// A consumed operand value, annotated with data semantics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracedVal {
    /// The value as consumed (after any injected fault).
    pub value: Value,
    /// Source of the value.
    pub source: ValueSource,
    /// If the value *is* (a direct, untransformed copy of) element `e` of a
    /// registered data object, that element.  This is the "register
    /// tracking" of the paper: it lets the analysis know which operands of an
    /// operation hold values of the target data object.
    pub element: Option<(ObjectId, u64)>,
}

impl TracedVal {
    /// A constant operand (no data semantics).
    pub fn constant(value: Value) -> Self {
        TracedVal {
            value,
            source: ValueSource::Const,
            element: None,
        }
    }
}

/// The semantic payload of a trace record.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceOp {
    /// Binary arithmetic / logic / shift.
    Bin {
        op: BinOp,
        ty: Type,
        lhs: TracedVal,
        rhs: TracedVal,
        result: Value,
    },
    /// Comparison.
    Cmp {
        pred: CmpPred,
        lhs: TracedVal,
        rhs: TracedVal,
        result: Value,
    },
    /// Cast / conversion.
    Cast {
        kind: CastKind,
        to: Type,
        src: TracedVal,
        result: Value,
    },
    /// Memory load.
    Load {
        ty: Type,
        addr: u64,
        /// Where the address value came from (register / constant / global
        /// base); needed by propagation replay to detect corrupted addresses.
        addr_src: ValueSource,
        /// Data-object element the address falls into, if any.
        element: Option<(ObjectId, u64)>,
        result: Value,
    },
    /// Memory store.
    Store {
        ty: Type,
        addr: u64,
        /// Where the address value came from.
        addr_src: ValueSource,
        /// Data-object element the destination falls into, if any.
        element: Option<(ObjectId, u64)>,
        /// The value written.
        value: TracedVal,
        /// The value that was overwritten (the previous memory contents).
        overwritten: Value,
        /// True if the stored value was computed from the destination
        /// element's current value (e.g. `sum[m] = sum[m] + x`): in that case
        /// the store does *not* mask a pre-existing error in the element.
        value_depends_on_dest: bool,
    },
    /// Address computation.
    Gep {
        base: TracedVal,
        index: TracedVal,
        elem_size: u64,
        result: Value,
    },
    /// Conditional select.
    Select {
        cond: TracedVal,
        then_v: TracedVal,
        else_v: TracedVal,
        result: Value,
    },
    /// Math intrinsic.
    Intrinsic {
        intr: Intrinsic,
        args: Vec<TracedVal>,
        result: Value,
    },
    /// Register copy.
    Mov { src: TracedVal, result: Value },
    /// Function call: arguments are copied into the callee's parameter
    /// registers in a new frame.
    Call {
        callee: FuncId,
        args: Vec<TracedVal>,
        /// Frame id assigned to the callee.
        callee_frame: u64,
        /// Parameter registers of the callee (same order as `args`).
        param_regs: Vec<RegId>,
    },
    /// Function return.
    Ret {
        value: Option<TracedVal>,
        /// Frame id of the caller resumed by this return (`None` when the
        /// entry function returns).
        caller_frame: Option<u64>,
        /// Destination register in the caller receiving the return value.
        dst_in_caller: Option<RegId>,
    },
    /// Conditional branch (records the decision for divergence detection).
    CondBr { cond: TracedVal, taken: bool },
    /// Switch (records which successor was taken).
    Switch {
        value: TracedVal,
        taken_index: usize,
    },
}

/// One executed operation.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Dynamic instruction id (0-based, increasing in execution order).
    pub id: u64,
    /// Frame id of the executing function activation (for register scoping).
    pub frame: u64,
    /// Static location: function.
    pub func: FuncId,
    /// Static location: block.
    pub block: BlockId,
    /// Static location: instruction index within the block
    /// (`u32::MAX` for terminators).
    pub inst: u32,
    /// Destination register written by this operation, if any
    /// (in frame `frame`, except for `Ret` where it is in the caller frame).
    pub dst: Option<RegId>,
    /// Semantic payload.
    pub op: TraceOp,
}

/// Marker value used in `inst` for terminator records.
pub const TERMINATOR_INST: u32 = u32::MAX;

impl TraceRecord {
    /// A stable key identifying the *static* instruction that produced this
    /// record.  Used for error-equivalence grouping.
    pub fn static_key(&self) -> (u32, u32, u32) {
        (self.func.0, self.block.0, self.inst)
    }

    /// The record's result value, if the operation produces one.
    pub fn result(&self) -> Option<Value> {
        match &self.op {
            TraceOp::Bin { result, .. }
            | TraceOp::Cmp { result, .. }
            | TraceOp::Cast { result, .. }
            | TraceOp::Load { result, .. }
            | TraceOp::Gep { result, .. }
            | TraceOp::Select { result, .. }
            | TraceOp::Intrinsic { result, .. }
            | TraceOp::Mov { result, .. } => Some(*result),
            _ => None,
        }
    }

    /// All consumed operands of this record, in a stable order.
    pub fn operands(&self) -> Vec<&TracedVal> {
        match &self.op {
            TraceOp::Bin { lhs, rhs, .. } => vec![lhs, rhs],
            TraceOp::Cmp { lhs, rhs, .. } => vec![lhs, rhs],
            TraceOp::Cast { src, .. } => vec![src],
            TraceOp::Load { .. } => vec![],
            TraceOp::Store { value, .. } => vec![value],
            TraceOp::Gep { base, index, .. } => vec![base, index],
            TraceOp::Select {
                cond,
                then_v,
                else_v,
                ..
            } => vec![cond, then_v, else_v],
            TraceOp::Intrinsic { args, .. } => args.iter().collect(),
            TraceOp::Mov { src, .. } => vec![src],
            TraceOp::Call { args, .. } => args.iter().collect(),
            TraceOp::Ret { value, .. } => value.iter().collect(),
            TraceOp::CondBr { cond, .. } => vec![cond],
            TraceOp::Switch { value, .. } => vec![value],
        }
    }

    /// Short mnemonic for reports.
    pub fn mnemonic(&self) -> &'static str {
        match &self.op {
            TraceOp::Bin { op, .. } => op.mnemonic(),
            TraceOp::Cmp { .. } => "cmp",
            TraceOp::Cast { kind, .. } => kind.mnemonic(),
            TraceOp::Load { .. } => "load",
            TraceOp::Store { .. } => "store",
            TraceOp::Gep { .. } => "gep",
            TraceOp::Select { .. } => "select",
            TraceOp::Intrinsic { intr, .. } => intr.mnemonic(),
            TraceOp::Mov { .. } => "mov",
            TraceOp::Call { .. } => "call",
            TraceOp::Ret { .. } => "ret",
            TraceOp::CondBr { .. } => "condbr",
            TraceOp::Switch { .. } => "switch",
        }
    }
}

/// A complete dynamic trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Records in execution order; `records[i].id == i`.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Record by dynamic id.
    pub fn record(&self, id: u64) -> Option<&TraceRecord> {
        self.records.get(id as usize)
    }

    /// Iterate over records that *consume or overwrite* an element of the
    /// given data object — i.e. the operations "with the participation of the
    /// target data object" in the paper's aDVF definition.
    pub fn records_touching(&self, obj: ObjectId) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter().filter(move |r| {
            r.operands()
                .iter()
                .any(|v| matches!(v.element, Some((o, _)) if o == obj))
                || matches!(
                    &r.op,
                    TraceOp::Store {
                        element: Some((o, _)),
                        ..
                    } if *o == obj
                )
                || matches!(
                    &r.op,
                    TraceOp::Load {
                        element: Some((o, _)),
                        ..
                    } if *o == obj
                )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, op: TraceOp) -> TraceRecord {
        TraceRecord {
            id,
            frame: 0,
            func: FuncId(0),
            block: BlockId(0),
            inst: id as u32,
            dst: None,
            op,
        }
    }

    #[test]
    fn operands_and_result_extraction() {
        let r = record(
            0,
            TraceOp::Bin {
                op: BinOp::FAdd,
                ty: Type::F64,
                lhs: TracedVal::constant(Value::F64(1.0)),
                rhs: TracedVal::constant(Value::F64(2.0)),
                result: Value::F64(3.0),
            },
        );
        assert_eq!(r.operands().len(), 2);
        assert_eq!(r.result(), Some(Value::F64(3.0)));
        assert_eq!(r.mnemonic(), "fadd");

        let s = record(
            1,
            TraceOp::Store {
                ty: Type::F64,
                addr: 0x1000,
                addr_src: ValueSource::Const,
                element: Some((ObjectId(0), 0)),
                value: TracedVal::constant(Value::F64(5.0)),
                overwritten: Value::F64(0.0),
                value_depends_on_dest: false,
            },
        );
        assert_eq!(s.operands().len(), 1);
        assert_eq!(s.result(), None);
    }

    #[test]
    fn records_touching_filters_by_object() {
        let mut trace = Trace::default();
        trace.records.push(record(
            0,
            TraceOp::Load {
                ty: Type::F64,
                addr: 0x1000,
                addr_src: ValueSource::Const,
                element: Some((ObjectId(0), 0)),
                result: Value::F64(1.0),
            },
        ));
        trace.records.push(record(
            1,
            TraceOp::Load {
                ty: Type::F64,
                addr: 0x2000,
                addr_src: ValueSource::Const,
                element: Some((ObjectId(1), 0)),
                result: Value::F64(2.0),
            },
        ));
        trace.records.push(record(
            2,
            TraceOp::Bin {
                op: BinOp::FMul,
                ty: Type::F64,
                lhs: TracedVal {
                    value: Value::F64(1.0),
                    source: ValueSource::Reg(RegId(0)),
                    element: Some((ObjectId(0), 0)),
                },
                rhs: TracedVal::constant(Value::F64(2.0)),
                result: Value::F64(2.0),
            },
        ));
        let touching0: Vec<u64> = trace.records_touching(ObjectId(0)).map(|r| r.id).collect();
        assert_eq!(touching0, vec![0, 2]);
        let touching1: Vec<u64> = trace.records_touching(ObjectId(1)).map(|r| r.id).collect();
        assert_eq!(touching1, vec![1]);
    }

    #[test]
    fn static_key_is_stable() {
        let r = record(
            5,
            TraceOp::Mov {
                src: TracedVal::constant(Value::I64(1)),
                result: Value::I64(1),
            },
        );
        assert_eq!(r.static_key(), (0, 0, 5));
    }
}
