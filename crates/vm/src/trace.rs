//! Dynamic instruction trace: an indexed, cache-friendly trace engine.
//!
//! One [`TraceRecord`] is emitted per executed IR operation.  Each record
//! carries everything the aDVF analysis needs without re-running the program:
//! the opcode and its semantic class, every consumed operand *value*, the
//! result value, the memory addresses touched, which data-object element (if
//! any) each consumed value corresponds to, and enough register/frame
//! information to replay error propagation forward through the trace.
//!
//! The trace is the aDVF hot path: every participation-site classification
//! replays error propagation through a window of records, and site
//! enumeration visits every operation touching the target object.  Three
//! engine-level decisions keep that fast:
//!
//! * **per-object record-id indexes** ([`TraceIndex`]) are built once, as
//!   records are appended, so [`Trace::records_touching`] and the site
//!   enumeration in `moard-core` are O(records touching the object) instead
//!   of O(trace) scans per object;
//! * **operand access is allocation-free** — [`TraceRecord::operands`]
//!   returns an inline [`Operands`] view (small fixed array or a borrow of
//!   the record's argument slice) instead of materializing a `Vec` per call;
//! * **windowed views are zero-copy** — [`Trace::window`] hands the
//!   propagation replay a borrowed slice cursor, so sharded per-site replay
//!   across threads shares one immutable trace with no cloning.

use crate::objects::ObjectId;
use moard_ir::{BinOp, BlockId, CastKind, CmpPred, FuncId, Intrinsic, RegId, Type, Value};

/// Where a consumed value came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueSource {
    /// A virtual register of the executing frame.
    Reg(RegId),
    /// An immediate constant.
    Const,
    /// The base address of a global (always a pointer).
    GlobalBase,
}

/// A consumed operand value, annotated with data semantics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracedVal {
    /// The value as consumed (after any injected fault).
    pub value: Value,
    /// Source of the value.
    pub source: ValueSource,
    /// If the value *is* (a direct, untransformed copy of) element `e` of a
    /// registered data object, that element.  This is the "register
    /// tracking" of the paper: it lets the analysis know which operands of an
    /// operation hold values of the target data object.
    pub element: Option<(ObjectId, u64)>,
}

impl TracedVal {
    /// A constant operand (no data semantics).
    pub fn constant(value: Value) -> Self {
        TracedVal {
            value,
            source: ValueSource::Const,
            element: None,
        }
    }
}

/// The semantic payload of a trace record.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceOp {
    /// Binary arithmetic / logic / shift.
    Bin {
        op: BinOp,
        ty: Type,
        lhs: TracedVal,
        rhs: TracedVal,
        result: Value,
    },
    /// Comparison.
    Cmp {
        pred: CmpPred,
        lhs: TracedVal,
        rhs: TracedVal,
        result: Value,
    },
    /// Cast / conversion.
    Cast {
        kind: CastKind,
        to: Type,
        src: TracedVal,
        result: Value,
    },
    /// Memory load.
    Load {
        ty: Type,
        addr: u64,
        /// Where the address value came from (register / constant / global
        /// base); needed by propagation replay to detect corrupted addresses.
        addr_src: ValueSource,
        /// Data-object element the address falls into, if any.
        element: Option<(ObjectId, u64)>,
        result: Value,
    },
    /// Memory store.
    Store {
        ty: Type,
        addr: u64,
        /// Where the address value came from.
        addr_src: ValueSource,
        /// Data-object element the destination falls into, if any.
        element: Option<(ObjectId, u64)>,
        /// The value written.
        value: TracedVal,
        /// The value that was overwritten (the previous memory contents).
        overwritten: Value,
        /// True if the stored value was computed from the destination
        /// element's current value (e.g. `sum[m] = sum[m] + x`): in that case
        /// the store does *not* mask a pre-existing error in the element.
        value_depends_on_dest: bool,
    },
    /// Address computation.
    Gep {
        base: TracedVal,
        index: TracedVal,
        elem_size: u64,
        result: Value,
    },
    /// Conditional select.
    Select {
        cond: TracedVal,
        then_v: TracedVal,
        else_v: TracedVal,
        result: Value,
    },
    /// Math intrinsic.
    Intrinsic {
        intr: Intrinsic,
        args: Vec<TracedVal>,
        result: Value,
    },
    /// Register copy.
    Mov { src: TracedVal, result: Value },
    /// Function call: arguments are copied into the callee's parameter
    /// registers in a new frame.
    Call {
        callee: FuncId,
        args: Vec<TracedVal>,
        /// Frame id assigned to the callee.
        callee_frame: u64,
        /// Parameter registers of the callee (same order as `args`).
        param_regs: Vec<RegId>,
    },
    /// Function return.
    Ret {
        value: Option<TracedVal>,
        /// Frame id of the caller resumed by this return (`None` when the
        /// entry function returns).
        caller_frame: Option<u64>,
        /// Destination register in the caller receiving the return value.
        dst_in_caller: Option<RegId>,
    },
    /// Conditional branch (records the decision for divergence detection).
    CondBr { cond: TracedVal, taken: bool },
    /// Switch (records which successor was taken).
    Switch {
        value: TracedVal,
        taken_index: usize,
    },
}

/// One executed operation.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Dynamic instruction id (0-based, increasing in execution order).
    pub id: u64,
    /// Frame id of the executing function activation (for register scoping).
    pub frame: u64,
    /// Static location: function.
    pub func: FuncId,
    /// Static location: block.
    pub block: BlockId,
    /// Static location: instruction index within the block
    /// (`u32::MAX` for terminators).
    pub inst: u32,
    /// Destination register written by this operation, if any
    /// (in frame `frame`, except for `Ret` where it is in the caller frame).
    pub dst: Option<RegId>,
    /// Semantic payload.
    pub op: TraceOp,
}

/// Marker value used in `inst` for terminator records.
pub const TERMINATOR_INST: u32 = u32::MAX;

/// Maximum number of inline operand references (the widest fixed-arity
/// operation is `Select` with three consumed values).
const INLINE_OPERANDS: usize = 3;

/// Allocation-free view of a record's consumed operands, in the stable order
/// the analysis indexes them by ([`crate::trace::TraceRecord::operands`]).
///
/// Fixed-arity operations borrow up to `INLINE_OPERANDS` inline references;
/// variadic operations (`Intrinsic`, `Call`) borrow the record's own argument
/// slice.  Either way, constructing and iterating the view allocates nothing.
#[derive(Debug, Clone, Copy)]
pub struct Operands<'a> {
    inline: [Option<&'a TracedVal>; INLINE_OPERANDS],
    inline_len: usize,
    slice: &'a [TracedVal],
}

impl<'a> Operands<'a> {
    fn inline(vals: &[&'a TracedVal]) -> Self {
        debug_assert!(vals.len() <= INLINE_OPERANDS);
        let mut inline = [None; INLINE_OPERANDS];
        for (slot, v) in inline.iter_mut().zip(vals.iter()) {
            *slot = Some(*v);
        }
        Operands {
            inline,
            inline_len: vals.len(),
            slice: &[],
        }
    }

    fn slice(slice: &'a [TracedVal]) -> Self {
        Operands {
            inline: [None; INLINE_OPERANDS],
            inline_len: 0,
            slice,
        }
    }

    /// Number of consumed operands.
    pub fn len(&self) -> usize {
        self.inline_len + self.slice.len()
    }

    /// True if the operation consumes nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th consumed operand (the index [`crate::trace::TraceRecord`]
    /// sites are keyed by).
    pub fn get(&self, i: usize) -> Option<&'a TracedVal> {
        if i < self.inline_len {
            self.inline[i]
        } else {
            self.slice.get(i - self.inline_len)
        }
    }

    /// Iterate over the operands in slot order.
    pub fn iter(&self) -> OperandsIter<'a> {
        OperandsIter {
            operands: *self,
            next: 0,
        }
    }
}

impl<'a> IntoIterator for Operands<'a> {
    type Item = &'a TracedVal;
    type IntoIter = OperandsIter<'a>;

    fn into_iter(self) -> OperandsIter<'a> {
        OperandsIter {
            operands: self,
            next: 0,
        }
    }
}

impl<'a> IntoIterator for &Operands<'a> {
    type Item = &'a TracedVal;
    type IntoIter = OperandsIter<'a>;

    fn into_iter(self) -> OperandsIter<'a> {
        self.iter()
    }
}

/// Iterator over an [`Operands`] view.
#[derive(Debug, Clone)]
pub struct OperandsIter<'a> {
    operands: Operands<'a>,
    next: usize,
}

impl<'a> Iterator for OperandsIter<'a> {
    type Item = &'a TracedVal;

    fn next(&mut self) -> Option<&'a TracedVal> {
        let item = self.operands.get(self.next);
        if item.is_some() {
            self.next += 1;
        }
        item
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.operands.len() - self.next;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for OperandsIter<'_> {}

impl TraceRecord {
    /// A stable key identifying the *static* instruction that produced this
    /// record.  Used for error-equivalence grouping.
    pub fn static_key(&self) -> (u32, u32, u32) {
        (self.func.0, self.block.0, self.inst)
    }

    /// The record's result value, if the operation produces one.
    pub fn result(&self) -> Option<Value> {
        match &self.op {
            TraceOp::Bin { result, .. }
            | TraceOp::Cmp { result, .. }
            | TraceOp::Cast { result, .. }
            | TraceOp::Load { result, .. }
            | TraceOp::Gep { result, .. }
            | TraceOp::Select { result, .. }
            | TraceOp::Intrinsic { result, .. }
            | TraceOp::Mov { result, .. } => Some(*result),
            _ => None,
        }
    }

    /// All consumed operands of this record, in a stable order, as an
    /// allocation-free view.
    pub fn operands(&self) -> Operands<'_> {
        match &self.op {
            TraceOp::Bin { lhs, rhs, .. } => Operands::inline(&[lhs, rhs]),
            TraceOp::Cmp { lhs, rhs, .. } => Operands::inline(&[lhs, rhs]),
            TraceOp::Cast { src, .. } => Operands::inline(&[src]),
            TraceOp::Load { .. } => Operands::inline(&[]),
            TraceOp::Store { value, .. } => Operands::inline(&[value]),
            TraceOp::Gep { base, index, .. } => Operands::inline(&[base, index]),
            TraceOp::Select {
                cond,
                then_v,
                else_v,
                ..
            } => Operands::inline(&[cond, then_v, else_v]),
            TraceOp::Intrinsic { args, .. } => Operands::slice(args),
            TraceOp::Mov { src, .. } => Operands::inline(&[src]),
            TraceOp::Call { args, .. } => Operands::slice(args),
            TraceOp::Ret { value, .. } => match value {
                Some(v) => Operands::inline(&[v]),
                None => Operands::inline(&[]),
            },
            TraceOp::CondBr { cond, .. } => Operands::inline(&[cond]),
            TraceOp::Switch { value, .. } => Operands::inline(&[value]),
        }
    }

    /// Every data object this record touches — consumed operand elements,
    /// plus the element a load reads or a store overwrites.  Visits each
    /// object at most once per record.  (Crate-visible so the paged trace
    /// writer maintains the same per-object index as [`Trace::push`].)
    pub(crate) fn touched_objects(&self, mut visit: impl FnMut(ObjectId)) {
        let mut seen: [Option<ObjectId>; INLINE_OPERANDS + 1] = [None; INLINE_OPERANDS + 1];
        let mut emit = |obj: ObjectId| {
            for slot in seen.iter_mut() {
                match slot {
                    Some(o) if *o == obj => return,
                    Some(_) => continue,
                    None => {
                        *slot = Some(obj);
                        visit(obj);
                        return;
                    }
                }
            }
            // More distinct objects than tracked slots (only possible for
            // wide variadic records): emit conservatively; the index
            // deduplicates on append.
            visit(obj);
        };
        for operand in self.operands() {
            if let Some((obj, _)) = operand.element {
                emit(obj);
            }
        }
        match &self.op {
            TraceOp::Load {
                element: Some((obj, _)),
                ..
            }
            | TraceOp::Store {
                element: Some((obj, _)),
                ..
            } => emit(*obj),
            _ => {}
        }
    }

    /// Short mnemonic for reports.
    pub fn mnemonic(&self) -> &'static str {
        match &self.op {
            TraceOp::Bin { op, .. } => op.mnemonic(),
            TraceOp::Cmp { .. } => "cmp",
            TraceOp::Cast { kind, .. } => kind.mnemonic(),
            TraceOp::Load { .. } => "load",
            TraceOp::Store { .. } => "store",
            TraceOp::Gep { .. } => "gep",
            TraceOp::Select { .. } => "select",
            TraceOp::Intrinsic { intr, .. } => intr.mnemonic(),
            TraceOp::Mov { .. } => "mov",
            TraceOp::Call { .. } => "call",
            TraceOp::Ret { .. } => "ret",
            TraceOp::CondBr { .. } => "condbr",
            TraceOp::Switch { .. } => "switch",
        }
    }
}

/// Per-object record-id indexes, maintained incrementally as records are
/// appended.  `ids(obj)` lists, in execution order, every record that
/// consumes or overwrites an element of `obj` — the linear-scan predicate of
/// the old `records_touching`, precomputed once at trace time.
#[derive(Debug, Clone, Default)]
pub struct TraceIndex {
    /// `per_object[obj.0]` = sorted record ids touching that object.
    per_object: Vec<Vec<u64>>,
}

impl TraceIndex {
    /// Record ids touching `obj`, in execution order.
    pub fn ids(&self, obj: ObjectId) -> &[u64] {
        self.per_object
            .get(obj.0 as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of objects with at least one indexed record.
    pub fn indexed_objects(&self) -> usize {
        self.per_object.iter().filter(|ids| !ids.is_empty()).count()
    }

    /// Total number of (object, record) index entries.
    pub fn entries(&self) -> u64 {
        self.per_object.iter().map(|ids| ids.len() as u64).sum()
    }

    pub(crate) fn note(&mut self, obj: ObjectId, record_id: u64) {
        let slot = obj.0 as usize;
        if slot >= self.per_object.len() {
            self.per_object.resize_with(slot + 1, Vec::new);
        }
        let ids = &mut self.per_object[slot];
        // Records are appended in id order; a record emitting the same
        // object twice (possible only for wide variadic records) dedupes
        // against the tail.
        if ids.last() != Some(&record_id) {
            ids.push(record_id);
        }
    }

    /// Number of object slots (the highest indexed `ObjectId` + 1); used by
    /// the paged backend to persist the index densely.
    pub(crate) fn object_slots(&self) -> usize {
        self.per_object.len()
    }

    /// Install the full id list of one object slot (paged-manifest reload).
    pub(crate) fn set_ids(&mut self, obj: ObjectId, ids: Vec<u64>) {
        let slot = obj.0 as usize;
        if slot >= self.per_object.len() {
            self.per_object.resize_with(slot + 1, Vec::new);
        }
        self.per_object[slot] = ids;
    }
}

/// Summary statistics of a trace and its index (serialized into
/// `BENCH_*.json` by `moard-core`'s report layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Number of records.
    pub records: u64,
    /// Number of data objects with at least one indexed record.
    pub indexed_objects: usize,
    /// Total (object, record) index entries.
    pub index_entries: u64,
}

/// A complete dynamic trace with its per-object index.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Records in execution order; `records[i].id == i`.
    records: Vec<TraceRecord>,
    /// Per-object record-id index, maintained by [`Trace::push`].
    index: TraceIndex,
}

impl Trace {
    /// Append a record, updating the per-object index.  Records must arrive
    /// in execution order with `record.id == len()`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-order id: the index stores record *ids* and
    /// `records_touching` dereferences them as positions, so accepting a
    /// mismatched record would silently corrupt every downstream analysis.
    pub fn push(&mut self, record: TraceRecord) {
        assert_eq!(
            record.id as usize,
            self.records.len(),
            "records must be appended in dynamic-id order"
        );
        let id = record.id;
        let index = &mut self.index;
        record.touched_objects(|obj| index.note(obj, id));
        self.records.push(record);
    }

    /// Build a trace (and its index) from records already in execution
    /// order.
    pub fn from_records(records: impl IntoIterator<Item = TraceRecord>) -> Self {
        let mut trace = Trace::default();
        for record in records {
            trace.push(record);
        }
        trace
    }

    /// The records in execution order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Iterate over the records in execution order.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceRecord> {
        self.records.iter()
    }

    /// The per-object record-id index.
    pub fn index(&self) -> &TraceIndex {
        &self.index
    }

    /// Summary statistics of the trace and its index.
    pub fn stats(&self) -> TraceStats {
        TraceStats {
            records: self.records.len() as u64,
            indexed_objects: self.index.indexed_objects(),
            index_entries: self.index.entries(),
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Record by dynamic id.
    pub fn record(&self, id: u64) -> Option<&TraceRecord> {
        self.records.get(id as usize)
    }

    /// Zero-copy cursor view of the records from `start_index` (clamped to
    /// the trace length) to the end — the windowed view the propagation
    /// replay walks.  Borrowing a slice instead of cloning records lets
    /// sharded per-site replay across threads share one immutable trace.
    pub fn window(&self, start_index: usize) -> &[TraceRecord] {
        &self.records[start_index.min(self.records.len())..]
    }

    /// Record ids that *consume or overwrite* an element of the given data
    /// object, in execution order, from the precomputed index.
    pub fn touching_ids(&self, obj: ObjectId) -> &[u64] {
        self.index.ids(obj)
    }

    /// Iterate over records that *consume or overwrite* an element of the
    /// given data object — i.e. the operations "with the participation of the
    /// target data object" in the paper's aDVF definition.  Served from the
    /// per-object index: O(records touching `obj`), not O(trace).
    pub fn records_touching(&self, obj: ObjectId) -> impl Iterator<Item = &TraceRecord> {
        self.index
            .ids(obj)
            .iter()
            .map(move |&id| &self.records[id as usize])
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceRecord;
    type IntoIter = std::slice::Iter<'a, TraceRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

/// Backend-agnostic read access to a completed dynamic trace.
///
/// Two backends implement this: the in-memory [`Trace`] (everything
/// resident, the default) and the out-of-core [`crate::paged::PagedTrace`]
/// (fixed-size record segments on disk, decoded lazily per replay window).
/// The analysis layers (`moard-core`'s site enumeration, propagation replay,
/// and aDVF analyzer) operate on `&dyn TraceStorage`, so a `&Trace` at an
/// existing call site keeps working via unsized coercion.
///
/// Record access goes through per-thread [`TraceRead`] readers
/// ([`TraceStorage::new_reader`]) because the paged backend needs mutable
/// decode state (a small LRU of decoded segments); the storage itself stays
/// immutable and `Sync`, so sharded analysis shares one trace across worker
/// threads exactly as before.
pub trait TraceStorage: Send + Sync {
    /// Number of records in the trace.
    fn len(&self) -> u64;

    /// True if the trace holds no records.
    fn is_empty(&self) -> bool {
        TraceStorage::len(self) == 0
    }

    /// The per-object record-id index (always memory-resident).
    fn index(&self) -> &TraceIndex;

    /// Summary statistics of the trace and its index.
    fn stats(&self) -> TraceStats;

    /// Backend name for reports and diagnostics (`"memory"`, `"paged"`).
    fn backend_name(&self) -> &'static str;

    /// A fresh reader over this trace.  Readers are cheap for the memory
    /// backend and carry the decoded-segment LRU for the paged backend;
    /// create one per thread / long-lived cursor, not per record.
    fn new_reader(&self) -> Box<dyn TraceRead + '_>;

    /// The first decode failure observed by any reader of this trace, if
    /// one occurred.  Readers deliberately stay infallible on the replay
    /// hot path (a failed decode yields an empty run); fallible entry
    /// points check this slot after analysis and surface the typed error.
    fn poisoned(&self) -> Option<crate::paged::TraceError> {
        None
    }
}

/// A positioned reader over a [`TraceStorage`] backend.
pub trait TraceRead {
    /// The longest contiguous run of decoded records starting at dynamic id
    /// `id`: the whole tail for the memory backend, the rest of the decoded
    /// segment for the paged backend.  Empty iff `id` is past the end of
    /// the trace — or the backend failed to decode (see
    /// [`TraceStorage::poisoned`]).  Callers advance by the returned length
    /// and call again, so a replay window crossing N segments costs N
    /// virtual calls, not one per record.
    fn run_from(&mut self, id: u64) -> &[TraceRecord];

    /// One record by dynamic id (cloned out of the backend's buffers), or
    /// `None` past the end / on a poisoned decode.
    fn fetch(&mut self, id: u64) -> Option<TraceRecord> {
        self.run_from(id).first().cloned()
    }
}

impl TraceStorage for Trace {
    fn len(&self) -> u64 {
        self.records.len() as u64
    }

    fn index(&self) -> &TraceIndex {
        &self.index
    }

    fn stats(&self) -> TraceStats {
        Trace::stats(self)
    }

    fn backend_name(&self) -> &'static str {
        "memory"
    }

    fn new_reader(&self) -> Box<dyn TraceRead + '_> {
        Box::new(MemoryReader {
            records: &self.records,
        })
    }
}

/// The memory backend's reader: a borrow of the record vector.  `run_from`
/// returns the whole tail, so a full replay costs one virtual call.
struct MemoryReader<'t> {
    records: &'t [TraceRecord],
}

impl TraceRead for MemoryReader<'_> {
    fn run_from(&mut self, id: u64) -> &[TraceRecord] {
        let start = (id as usize).min(self.records.len());
        &self.records[start..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, op: TraceOp) -> TraceRecord {
        TraceRecord {
            id,
            frame: 0,
            func: FuncId(0),
            block: BlockId(0),
            inst: id as u32,
            dst: None,
            op,
        }
    }

    #[test]
    fn operands_and_result_extraction() {
        let r = record(
            0,
            TraceOp::Bin {
                op: BinOp::FAdd,
                ty: Type::F64,
                lhs: TracedVal::constant(Value::F64(1.0)),
                rhs: TracedVal::constant(Value::F64(2.0)),
                result: Value::F64(3.0),
            },
        );
        assert_eq!(r.operands().len(), 2);
        assert_eq!(r.result(), Some(Value::F64(3.0)));
        assert_eq!(r.mnemonic(), "fadd");

        let s = record(
            1,
            TraceOp::Store {
                ty: Type::F64,
                addr: 0x1000,
                addr_src: ValueSource::Const,
                element: Some((ObjectId(0), 0)),
                value: TracedVal::constant(Value::F64(5.0)),
                overwritten: Value::F64(0.0),
                value_depends_on_dest: false,
            },
        );
        assert_eq!(s.operands().len(), 1);
        assert_eq!(s.result(), None);
    }

    #[test]
    fn operands_view_indexing_matches_iteration() {
        let r = record(
            0,
            TraceOp::Select {
                cond: TracedVal::constant(Value::I1(true)),
                then_v: TracedVal::constant(Value::F64(1.0)),
                else_v: TracedVal::constant(Value::F64(2.0)),
                result: Value::F64(1.0),
            },
        );
        let view = r.operands();
        assert_eq!(view.len(), 3);
        assert!(!view.is_empty());
        let collected: Vec<&TracedVal> = view.iter().collect();
        assert_eq!(collected.len(), 3);
        for (i, v) in view.iter().enumerate() {
            assert_eq!(view.get(i).unwrap(), v);
        }
        assert!(view.get(3).is_none());
        assert_eq!(view.iter().len(), 3);

        // Variadic records borrow their argument slice.
        let intr = record(
            1,
            TraceOp::Intrinsic {
                intr: Intrinsic::Sqrt,
                args: vec![TracedVal::constant(Value::F64(4.0))],
                result: Value::F64(2.0),
            },
        );
        assert_eq!(intr.operands().len(), 1);
        assert_eq!(intr.operands().get(0).unwrap().value, Value::F64(4.0));

        let load = record(
            2,
            TraceOp::Load {
                ty: Type::F64,
                addr: 0x1000,
                addr_src: ValueSource::Const,
                element: None,
                result: Value::F64(0.0),
            },
        );
        assert!(load.operands().is_empty());
        assert_eq!(load.operands().iter().next(), None);
    }

    fn touching_fixture() -> Trace {
        Trace::from_records([
            record(
                0,
                TraceOp::Load {
                    ty: Type::F64,
                    addr: 0x1000,
                    addr_src: ValueSource::Const,
                    element: Some((ObjectId(0), 0)),
                    result: Value::F64(1.0),
                },
            ),
            record(
                1,
                TraceOp::Load {
                    ty: Type::F64,
                    addr: 0x2000,
                    addr_src: ValueSource::Const,
                    element: Some((ObjectId(1), 0)),
                    result: Value::F64(2.0),
                },
            ),
            record(
                2,
                TraceOp::Bin {
                    op: BinOp::FMul,
                    ty: Type::F64,
                    lhs: TracedVal {
                        value: Value::F64(1.0),
                        source: ValueSource::Reg(RegId(0)),
                        element: Some((ObjectId(0), 0)),
                    },
                    rhs: TracedVal::constant(Value::F64(2.0)),
                    result: Value::F64(2.0),
                },
            ),
        ])
    }

    #[test]
    fn records_touching_filters_by_object() {
        let trace = touching_fixture();
        let touching0: Vec<u64> = trace.records_touching(ObjectId(0)).map(|r| r.id).collect();
        assert_eq!(touching0, vec![0, 2]);
        let touching1: Vec<u64> = trace.records_touching(ObjectId(1)).map(|r| r.id).collect();
        assert_eq!(touching1, vec![1]);
        // Unindexed objects are empty, not a panic.
        assert_eq!(trace.records_touching(ObjectId(7)).count(), 0);
    }

    #[test]
    fn index_is_built_incrementally_and_deduplicated() {
        // A record consuming the same object in both operands must be
        // indexed once.
        let trace = Trace::from_records([record(
            0,
            TraceOp::Bin {
                op: BinOp::FMul,
                ty: Type::F64,
                lhs: TracedVal {
                    value: Value::F64(3.0),
                    source: ValueSource::Reg(RegId(0)),
                    element: Some((ObjectId(2), 4)),
                },
                rhs: TracedVal {
                    value: Value::F64(3.0),
                    source: ValueSource::Reg(RegId(1)),
                    element: Some((ObjectId(2), 4)),
                },
                result: Value::F64(9.0),
            },
        )]);
        assert_eq!(trace.touching_ids(ObjectId(2)), &[0]);
        let stats = trace.stats();
        assert_eq!(stats.records, 1);
        assert_eq!(stats.indexed_objects, 1);
        assert_eq!(stats.index_entries, 1);
    }

    #[test]
    fn store_and_load_elements_are_indexed() {
        let trace = Trace::from_records([record(
            0,
            TraceOp::Store {
                ty: Type::F64,
                addr: 0x1000,
                addr_src: ValueSource::Const,
                element: Some((ObjectId(3), 0)),
                value: TracedVal {
                    value: Value::F64(5.0),
                    source: ValueSource::Reg(RegId(0)),
                    element: Some((ObjectId(1), 2)),
                },
                overwritten: Value::F64(0.0),
                value_depends_on_dest: false,
            },
        )]);
        assert_eq!(trace.touching_ids(ObjectId(3)), &[0]);
        assert_eq!(trace.touching_ids(ObjectId(1)), &[0]);
        assert_eq!(trace.stats().index_entries, 2);
    }

    #[test]
    #[should_panic(expected = "dynamic-id order")]
    fn out_of_order_record_ids_are_rejected() {
        let _ = Trace::from_records([record(
            3,
            TraceOp::Mov {
                src: TracedVal::constant(Value::I64(1)),
                result: Value::I64(1),
            },
        )]);
    }

    #[test]
    fn window_is_a_zero_copy_cursor() {
        let trace = touching_fixture();
        assert_eq!(trace.window(0).len(), 3);
        assert_eq!(trace.window(2).len(), 1);
        assert_eq!(trace.window(2)[0].id, 2);
        // Past-the-end starts clamp to an empty window instead of panicking.
        assert_eq!(trace.window(3).len(), 0);
        assert_eq!(trace.window(1000).len(), 0);
    }

    #[test]
    fn static_key_is_stable() {
        let r = record(
            5,
            TraceOp::Mov {
                src: TracedVal::constant(Value::I64(1)),
                result: Value::I64(1),
            },
        );
        assert_eq!(r.static_key(), (0, 0, 5));
    }
}
