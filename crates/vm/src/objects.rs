//! Data-object registry: the bridge between raw memory addresses and the
//! *data semantics* the MOARD analysis needs.
//!
//! The paper stresses that random fault injection "loses data semantics":
//! a corrupted value cannot be attributed to a data object.  MOARD instead
//! tracks the memory address range of every data object and the registers
//! currently holding its values.  This module provides the address-range
//! half; register tracking lives in the interpreter's provenance machinery.

use moard_ir::{GlobalId, Type};
use std::collections::HashMap;

/// Identifier of a data object within a [`DataObjectRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u32);

/// A registered data object: a named, contiguous array of scalar elements.
#[derive(Debug, Clone, PartialEq)]
pub struct DataObject {
    /// Registry id.
    pub id: ObjectId,
    /// Human-readable name (matches the IR global's name).
    pub name: String,
    /// The IR global backing this object.
    pub global: GlobalId,
    /// Base address in VM memory.
    pub base: u64,
    /// Element scalar type.
    pub elem_ty: Type,
    /// Number of elements.
    pub count: u64,
}

impl DataObject {
    /// One-past-the-end address.
    pub fn end(&self) -> u64 {
        self.base + self.count * self.elem_ty.byte_size()
    }

    /// Address of element `index`.
    pub fn elem_addr(&self, index: u64) -> u64 {
        self.base + index * self.elem_ty.byte_size()
    }

    /// Does `addr` fall inside this object?  Returns the element index if so
    /// (the address may point into the middle of an element).
    pub fn locate(&self, addr: u64) -> Option<u64> {
        if addr >= self.base && addr < self.end() {
            Some((addr - self.base) / self.elem_ty.byte_size())
        } else {
            None
        }
    }

    /// Total size in bytes.
    pub fn byte_size(&self) -> u64 {
        self.count * self.elem_ty.byte_size()
    }
}

/// Registry of every data object in a loaded module.
#[derive(Debug, Clone, Default)]
pub struct DataObjectRegistry {
    objects: Vec<DataObject>,
    by_name: HashMap<String, ObjectId>,
    by_global: HashMap<GlobalId, ObjectId>,
    /// Sorted (base, id) pairs for address lookup.
    ranges: Vec<(u64, ObjectId)>,
}

impl DataObjectRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a data object.  Objects must be registered in increasing
    /// base-address order (the VM allocates them that way).
    pub fn register(
        &mut self,
        name: impl Into<String>,
        global: GlobalId,
        base: u64,
        elem_ty: Type,
        count: u64,
    ) -> ObjectId {
        let id = ObjectId(self.objects.len() as u32);
        let name = name.into();
        let obj = DataObject {
            id,
            name: name.clone(),
            global,
            base,
            elem_ty,
            count,
        };
        debug_assert!(
            self.ranges.last().map(|&(b, _)| b < base).unwrap_or(true),
            "objects must be registered in address order"
        );
        self.by_name.insert(name, id);
        self.by_global.insert(global, id);
        self.ranges.push((base, id));
        self.objects.push(obj);
        id
    }

    /// Number of registered objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if no objects are registered.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// All objects.
    pub fn iter(&self) -> impl Iterator<Item = &DataObject> {
        self.objects.iter()
    }

    /// Object by id.
    pub fn get(&self, id: ObjectId) -> &DataObject {
        &self.objects[id.0 as usize]
    }

    /// Object by name.
    pub fn by_name(&self, name: &str) -> Option<&DataObject> {
        self.by_name.get(name).map(|id| self.get(*id))
    }

    /// Object backing an IR global.
    pub fn by_global(&self, global: GlobalId) -> Option<&DataObject> {
        self.by_global.get(&global).map(|id| self.get(*id))
    }

    /// Locate which object (and element index) an address falls into.
    pub fn locate(&self, addr: u64) -> Option<(ObjectId, u64)> {
        // Binary search on base addresses, then check containment.
        let idx = self.ranges.partition_point(|&(base, _)| base <= addr);
        if idx == 0 {
            return None;
        }
        let (_, id) = self.ranges[idx - 1];
        let obj = self.get(id);
        obj.locate(addr).map(|e| (id, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> DataObjectRegistry {
        let mut r = DataObjectRegistry::new();
        r.register("a", GlobalId(0), 0x1000, Type::F64, 4); // 0x1000..0x1020
        r.register("b", GlobalId(1), 0x1020, Type::I32, 8); // 0x1020..0x1040
        r.register("c", GlobalId(2), 0x2000, Type::F64, 2); // 0x2000..0x2010
        r
    }

    #[test]
    fn locate_finds_correct_object_and_element() {
        let r = registry();
        assert_eq!(r.locate(0x1000), Some((ObjectId(0), 0)));
        assert_eq!(r.locate(0x1008), Some((ObjectId(0), 1)));
        assert_eq!(r.locate(0x101f), Some((ObjectId(0), 3)));
        assert_eq!(r.locate(0x1020), Some((ObjectId(1), 0)));
        assert_eq!(r.locate(0x1024), Some((ObjectId(1), 1)));
        assert_eq!(r.locate(0x2008), Some((ObjectId(2), 1)));
    }

    #[test]
    fn locate_misses_gaps_and_out_of_range() {
        let r = registry();
        assert_eq!(r.locate(0xfff), None);
        assert_eq!(r.locate(0x1040), None); // gap between b and c
        assert_eq!(r.locate(0x2010), None);
    }

    #[test]
    fn lookup_by_name_and_global() {
        let r = registry();
        assert_eq!(r.by_name("b").unwrap().count, 8);
        assert_eq!(r.by_global(GlobalId(2)).unwrap().name, "c");
        assert!(r.by_name("missing").is_none());
    }

    #[test]
    fn elem_addr_is_inverse_of_locate() {
        let r = registry();
        let obj = r.by_name("a").unwrap();
        for i in 0..obj.count {
            let addr = obj.elem_addr(i);
            assert_eq!(r.locate(addr), Some((obj.id, i)));
        }
    }

    #[test]
    fn sizes() {
        let r = registry();
        assert_eq!(r.by_name("a").unwrap().byte_size(), 32);
        assert_eq!(r.by_name("b").unwrap().byte_size(), 32);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }
}
