//! Deterministic fault specification.
//!
//! A [`FaultSpec`] pin-points a single transient fault: *which* dynamic
//! instruction, *which* consumed value (or memory element), and *which* bits
//! — a bit **mask** XOR-ed into the value, so a single-bit flip (the paper's
//! evaluation, §III-D/E and §IV) and the multi-bit patterns of §VII-B
//! (adjacent bursts, spatially separated pairs) are the same operation at
//! the injection site.  Unlike random fault injection it is exactly
//! reproducible and is used to resolve error-masking questions the pure
//! trace analysis cannot settle.

use std::fmt;

/// Which value of the targeted dynamic instruction the fault corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultTarget {
    /// The `idx`-th consumed operand (same ordering as
    /// [`crate::trace::TraceRecord::operands`]).  If the operand was read
    /// from a register, the corrupted value is also written back to that
    /// register so the corruption persists in architecturally visible state.
    Operand(usize),
    /// The value being loaded: the fault is applied to the *memory element*
    /// just before the load executes.  This models "an error happens to the
    /// data object element and is consumed by this operation".
    LoadValue,
    /// The memory element a store is about to overwrite: the fault is
    /// applied to memory just before the store executes.  The paper counts
    /// this as a participating element of the destination data object.
    StoreDest,
    /// The result produced by the instruction (corrupted after computation,
    /// before being written to the destination register).
    Result,
}

impl fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultTarget::Operand(i) => write!(f, "operand[{i}]"),
            FaultTarget::LoadValue => write!(f, "load-value"),
            FaultTarget::StoreDest => write!(f, "store-dest"),
            FaultTarget::Result => write!(f, "result"),
        }
    }
}

/// A transient fault at an exact dynamic location: the set bits of `mask`
/// are XOR-ed into the targeted value.  One set bit is the paper's
/// single-bit error; several set bits realize the §VII-B multi-bit
/// patterns with the same one-XOR application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSpec {
    /// Dynamic instruction id at which the fault strikes.
    pub dyn_id: u64,
    /// Which value of that instruction is corrupted.
    pub target: FaultTarget,
    /// Bit mask XOR-ed into the value (bit 0 = least significant).  Mask
    /// bits at or above the targeted value's width are ignored.
    pub mask: u64,
}

impl FaultSpec {
    /// A fault flipping exactly the set bits of `mask`.
    pub fn masked(dyn_id: u64, target: FaultTarget, mask: u64) -> Self {
        FaultSpec {
            dyn_id,
            target,
            mask,
        }
    }

    /// Convenience wrapper: the classic single-bit flip at `bit`
    /// (0 = least significant).  A position at or above 64 yields an empty
    /// mask — a no-op injection — rather than wrapping onto a low bit.
    pub fn single_bit(dyn_id: u64, target: FaultTarget, bit: u32) -> Self {
        debug_assert!(bit < 64, "bit {bit} out of the 64-bit mask range");
        FaultSpec::masked(dyn_id, target, 1u64.checked_shl(bit).unwrap_or(0))
    }

    /// The flipped bit positions, in increasing order.
    pub fn bits(&self) -> Vec<u32> {
        (0..64).filter(|b| self.mask & (1u64 << b) != 0).collect()
    }

    /// The single flipped bit, if the mask has exactly one set bit.
    pub fn single_bit_position(&self) -> Option<u32> {
        if self.mask.count_ones() == 1 {
            Some(self.mask.trailing_zeros())
        } else {
            None
        }
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bits = self
            .bits()
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join("+");
        write!(f, "fault@{} {} bits {}", self.dyn_id, self.target, bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_readable() {
        let s = FaultSpec::single_bit(42, FaultTarget::Operand(1), 63).to_string();
        assert_eq!(s, "fault@42 operand[1] bits 63");
        let s = FaultSpec::masked(7, FaultTarget::LoadValue, 0b11).to_string();
        assert!(s.contains("load-value"));
        assert!(s.contains("bits 0+1"));
    }

    #[test]
    fn single_bit_is_a_mask_wrapper() {
        let f = FaultSpec::single_bit(1, FaultTarget::Result, 5);
        assert_eq!(f.mask, 1 << 5);
        assert_eq!(f.single_bit_position(), Some(5));
        assert_eq!(f.bits(), vec![5]);
        let m = FaultSpec::masked(1, FaultTarget::Result, (1 << 3) | (1 << 7));
        assert_eq!(m.single_bit_position(), None);
        assert_eq!(m.bits(), vec![3, 7]);
    }

    #[test]
    fn equality_and_hash() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(FaultSpec::single_bit(1, FaultTarget::Result, 2));
        set.insert(FaultSpec::single_bit(1, FaultTarget::Result, 2));
        set.insert(FaultSpec::single_bit(1, FaultTarget::Result, 3));
        set.insert(FaultSpec::masked(1, FaultTarget::Result, 0b1100));
        assert_eq!(set.len(), 3);
    }
}
