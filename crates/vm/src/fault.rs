//! Deterministic fault specification.
//!
//! A [`FaultSpec`] pin-points a single transient fault: *which* dynamic
//! instruction, *which* consumed value (or memory element), and *which* bit.
//! This is the deterministic fault injection of the paper (§III-D/E and §IV):
//! unlike random fault injection it is exactly reproducible and is used to
//! resolve error-masking questions the pure trace analysis cannot settle.

use std::fmt;

/// Which value of the targeted dynamic instruction the fault corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultTarget {
    /// The `idx`-th consumed operand (same ordering as
    /// [`crate::trace::TraceRecord::operands`]).  If the operand was read
    /// from a register, the corrupted value is also written back to that
    /// register so the corruption persists in architecturally visible state.
    Operand(usize),
    /// The value being loaded: the fault is applied to the *memory element*
    /// just before the load executes.  This models "an error happens to the
    /// data object element and is consumed by this operation".
    LoadValue,
    /// The memory element a store is about to overwrite: the fault is
    /// applied to memory just before the store executes.  The paper counts
    /// this as a participating element of the destination data object.
    StoreDest,
    /// The result produced by the instruction (corrupted after computation,
    /// before being written to the destination register).
    Result,
}

impl fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultTarget::Operand(i) => write!(f, "operand[{i}]"),
            FaultTarget::LoadValue => write!(f, "load-value"),
            FaultTarget::StoreDest => write!(f, "store-dest"),
            FaultTarget::Result => write!(f, "result"),
        }
    }
}

/// A single-bit (or, via repeated application, multi-bit) transient fault at
/// an exact dynamic location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSpec {
    /// Dynamic instruction id at which the fault strikes.
    pub dyn_id: u64,
    /// Which value of that instruction is corrupted.
    pub target: FaultTarget,
    /// Bit position to flip (0 = least significant).
    pub bit: u32,
}

impl FaultSpec {
    /// Convenience constructor.
    pub fn new(dyn_id: u64, target: FaultTarget, bit: u32) -> Self {
        FaultSpec {
            dyn_id,
            target,
            bit,
        }
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault@{} {} bit {}", self.dyn_id, self.target, self.bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_readable() {
        let s = FaultSpec::new(42, FaultTarget::Operand(1), 63).to_string();
        assert_eq!(s, "fault@42 operand[1] bit 63");
        let s = FaultSpec::new(7, FaultTarget::LoadValue, 0).to_string();
        assert!(s.contains("load-value"));
    }

    #[test]
    fn equality_and_hash() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(FaultSpec::new(1, FaultTarget::Result, 2));
        set.insert(FaultSpec::new(1, FaultTarget::Result, 2));
        set.insert(FaultSpec::new(1, FaultTarget::Result, 3));
        assert_eq!(set.len(), 2);
    }
}
