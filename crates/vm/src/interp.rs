//! The tracing interpreter ("application trace generator" + "deterministic
//! fault injector" of the MOARD framework).
//!
//! One [`Vm`] instance owns a fresh copy of a module's memory image.  It can:
//!
//! * execute the module natively (the *golden run*),
//! * execute while recording a [`Trace`] — one record per dynamic operation,
//!   annotated with data semantics (which data-object element each consumed
//!   value corresponds to, and whether a stored value depends on the element
//!   it overwrites), and
//! * execute with a single deterministic fault ([`FaultSpec`]) applied at an
//!   exact dynamic instruction, which is how the model resolves
//!   overshadowing, propagation, and algorithm-level masking questions.

use crate::fault::{FaultSpec, FaultTarget};
use crate::memory::Memory;
use crate::objects::{DataObjectRegistry, ObjectId};
use crate::outcome::{ExecOutcome, ExecStatus};
use crate::paged::{TraceBackendSpec, TraceBuilder, TraceData, TraceError};
use crate::taint::TaintSet;
use crate::trace::{Trace, TraceOp, TraceRecord, TracedVal, ValueSource, TERMINATOR_INST};
use moard_ir::{
    eval_binop, eval_cast, eval_cmp, eval_intrinsic, BlockId, FuncId, GlobalInit, Inst, Module,
    Operand, RegId, Terminator, Value,
};
use std::collections::BTreeMap;
use std::collections::HashMap;

/// Interpreter configuration.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Maximum number of dynamic instructions before the run is classified as
    /// a timeout.  Protects against runaway loops caused by corrupted loop
    /// bounds or indices.
    pub max_steps: u64,
    /// Memory capacity in bytes available to globals.
    pub memory_capacity: u64,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            max_steps: 20_000_000,
            memory_capacity: 64 << 20,
        }
    }
}

/// Errors occurring while *loading* a module (before execution) or while
/// persisting its trace.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// A global did not fit into the configured memory capacity.
    OutOfMemory(String),
    /// The module has no entry function.
    NoEntry(String),
    /// The paged trace backend failed to persist the trace.
    Trace(TraceError),
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::OutOfMemory(g) => write!(f, "global {g} does not fit in VM memory"),
            VmError::NoEntry(e) => write!(f, "entry function `{e}` not found"),
            VmError::Trace(e) => write!(f, "trace backend failed: {e}"),
        }
    }
}

impl std::error::Error for VmError {}

impl From<TraceError> for VmError {
    fn from(e: TraceError) -> VmError {
        VmError::Trace(e)
    }
}

/// One function activation.
struct Frame {
    func: FuncId,
    frame_id: u64,
    block: BlockId,
    inst: usize,
    regs: Vec<Value>,
    prov: Vec<Option<(ObjectId, u64)>>,
    taint: Vec<TaintSet>,
    /// Register in the *caller* frame that receives this frame's return value.
    ret_dst: Option<RegId>,
}

/// Evaluated operand with data semantics.
#[derive(Clone)]
struct OpVal {
    value: Value,
    source: ValueSource,
    element: Option<(ObjectId, u64)>,
    taint: TaintSet,
}

impl OpVal {
    fn traced(&self) -> TracedVal {
        TracedVal {
            value: self.value,
            source: self.source,
            element: self.element,
        }
    }
}

/// A loaded module image ready to execute.
pub struct Vm<'m> {
    module: &'m Module,
    memory: Memory,
    objects: DataObjectRegistry,
    global_bases: Vec<u64>,
    config: VmConfig,
}

impl<'m> Vm<'m> {
    /// Load `module`: allocate and initialize every global, build the
    /// data-object registry.
    pub fn new(module: &'m Module, config: VmConfig) -> Result<Self, VmError> {
        if module.function_id(&module.entry).is_none() {
            return Err(VmError::NoEntry(module.entry.clone()));
        }
        let mut memory = Memory::new(config.memory_capacity);
        let mut objects = DataObjectRegistry::new();
        let mut global_bases = Vec::with_capacity(module.globals.len());
        for (gi, g) in module.globals.iter().enumerate() {
            let base = memory
                .alloc(g.byte_size(), g.elem_ty.alignment())
                .map_err(|_| VmError::OutOfMemory(g.name.clone()))?;
            global_bases.push(base);
            objects.register(
                g.name.clone(),
                moard_ir::GlobalId(gi as u32),
                base,
                g.elem_ty,
                g.count,
            );
            match &g.init {
                GlobalInit::Zero => {
                    // Memory is zero-initialized by the allocator.
                }
                GlobalInit::Values(vals) => {
                    for (i, v) in vals.iter().enumerate() {
                        let addr = base + i as u64 * g.elem_ty.byte_size();
                        memory
                            .store(g.elem_ty, addr, *v)
                            .map_err(|_| VmError::OutOfMemory(g.name.clone()))?;
                    }
                }
            }
        }
        Ok(Vm {
            module,
            memory,
            objects,
            global_bases,
            config,
        })
    }

    /// Load a module with the default configuration.
    pub fn with_defaults(module: &'m Module) -> Result<Self, VmError> {
        Vm::new(module, VmConfig::default())
    }

    /// The data-object registry for this image (stable across runs of the
    /// same module/config because allocation is deterministic).
    pub fn objects(&self) -> &DataObjectRegistry {
        &self.objects
    }

    /// Execute without tracing or faults (the golden run).
    pub fn execute(mut self) -> ExecOutcome {
        self.run(None, None)
    }

    /// Execute while recording the full dynamic trace in memory.
    pub fn execute_traced(mut self) -> (ExecOutcome, Trace) {
        let mut builder = TraceBuilder::Memory(Trace::default());
        let outcome = self.run(None, Some(&mut builder));
        match builder {
            TraceBuilder::Memory(trace) => (outcome, trace),
            TraceBuilder::Paged(_) => unreachable!("memory builder stays memory"),
        }
    }

    /// Execute while recording the full dynamic trace into the backend
    /// selected by `spec` — the memory backend yields the same trace as
    /// [`Vm::execute_traced`]; the paged backend spills segments to disk as
    /// the run progresses.
    pub fn execute_traced_with(
        mut self,
        spec: &TraceBackendSpec,
    ) -> Result<(ExecOutcome, TraceData), VmError> {
        let mut builder = TraceBuilder::for_spec(spec)?;
        let outcome = self.run(None, Some(&mut builder));
        Ok((outcome, builder.finish()?))
    }

    /// Execute with a deterministic fault applied.
    pub fn execute_with_fault(mut self, fault: &FaultSpec) -> ExecOutcome {
        self.run(Some(fault), None)
    }

    fn new_frame(&self, func: FuncId, frame_id: u64, ret_dst: Option<RegId>) -> Frame {
        let f = self.module.function(func);
        let n = f.num_regs();
        Frame {
            func,
            frame_id,
            block: BlockId(0),
            inst: 0,
            regs: f.reg_types.iter().map(|&t| Value::zero(t)).collect(),
            prov: vec![None; n],
            taint: vec![TaintSet::empty(); n],
            ret_dst,
        }
    }

    fn snapshot_globals(&self) -> BTreeMap<String, Vec<Value>> {
        let mut out = BTreeMap::new();
        for obj in self.objects.iter() {
            let mut vals = Vec::with_capacity(obj.count as usize);
            for i in 0..obj.count {
                let addr = obj.elem_addr(i);
                vals.push(
                    self.memory
                        .load(obj.elem_ty, addr)
                        .unwrap_or(Value::zero(obj.elem_ty)),
                );
            }
            out.insert(obj.name.clone(), vals);
        }
        out
    }

    fn finish(&self, status: ExecStatus, ret: Option<Value>, steps: u64) -> ExecOutcome {
        ExecOutcome {
            status,
            return_value: ret,
            globals: self.snapshot_globals(),
            steps,
        }
    }

    fn eval_operand(&self, frame: &Frame, op: &Operand) -> OpVal {
        match op {
            Operand::Const(v) => OpVal {
                value: *v,
                source: ValueSource::Const,
                element: None,
                taint: TaintSet::empty(),
            },
            Operand::Reg(r) => OpVal {
                value: frame.regs[r.0 as usize],
                source: ValueSource::Reg(*r),
                element: frame.prov[r.0 as usize],
                taint: frame.taint[r.0 as usize].clone(),
            },
            Operand::Global(g) => OpVal {
                value: Value::Ptr(self.global_bases[g.0 as usize]),
                source: ValueSource::GlobalBase,
                element: None,
                taint: TaintSet::empty(),
            },
        }
    }

    fn set_reg(
        frame: &mut Frame,
        dst: RegId,
        value: Value,
        prov: Option<(ObjectId, u64)>,
        taint: TaintSet,
    ) {
        frame.regs[dst.0 as usize] = value;
        frame.prov[dst.0 as usize] = prov;
        frame.taint[dst.0 as usize] = taint;
    }

    /// Apply an operand-targeted fault if `fault` matches this dynamic
    /// instruction and slot.  Persists the corruption in the source register
    /// when the operand came from one.
    fn maybe_inject_operand(
        fault: Option<&FaultSpec>,
        dyn_id: u64,
        slot: usize,
        op: &mut OpVal,
        frame: &mut Frame,
    ) {
        if let Some(f) = fault {
            if f.dyn_id == dyn_id && f.target == FaultTarget::Operand(slot) {
                op.value = op.value.flip_mask(f.mask);
                if let ValueSource::Reg(r) = op.source {
                    frame.regs[r.0 as usize] = op.value;
                }
            }
        }
    }

    fn maybe_inject_result(fault: Option<&FaultSpec>, dyn_id: u64, result: Value) -> Value {
        if let Some(f) = fault {
            if f.dyn_id == dyn_id && f.target == FaultTarget::Result {
                return result.flip_mask(f.mask);
            }
        }
        result
    }

    /// The main interpreter loop.  `sink`, when present, receives one
    /// [`TraceRecord`] per dynamic operation (either backend; pushes are
    /// infallible on this hot path — see [`TraceBuilder::push`]).
    fn run(
        &mut self,
        fault: Option<&FaultSpec>,
        mut sink: Option<&mut TraceBuilder>,
    ) -> ExecOutcome {
        let entry = self.module.entry_id();
        let mut frames: Vec<Frame> = vec![self.new_frame(entry, 0, None)];
        let mut next_frame_id: u64 = 1;
        let mut dyn_id: u64 = 0;
        let mut mem_taint: HashMap<u64, TaintSet> = HashMap::new();

        macro_rules! emit {
            ($frame:expr, $inst_idx:expr, $dst:expr, $op:expr) => {
                if let Some(t) = sink.as_deref_mut() {
                    t.push(TraceRecord {
                        id: dyn_id,
                        frame: $frame.frame_id,
                        func: $frame.func,
                        block: $frame.block,
                        inst: $inst_idx,
                        dst: $dst,
                        op: $op,
                    });
                }
            };
        }

        loop {
            if dyn_id >= self.config.max_steps {
                return self.finish(ExecStatus::Timeout, None, dyn_id);
            }
            // Split the borrow: everything below works on the top frame.
            let frame_idx = frames.len() - 1;
            let func = frames[frame_idx].func;
            let block = frames[frame_idx].block;
            let inst_idx = frames[frame_idx].inst;
            let function = self.module.function(func);
            let blk = function.block(block);

            if inst_idx < blk.insts.len() {
                let inst = blk.insts[inst_idx].clone();
                frames[frame_idx].inst += 1;
                let frame = &mut frames[frame_idx];
                match inst {
                    Inst::Bin {
                        op,
                        ty,
                        lhs,
                        rhs,
                        dst,
                    } => {
                        let mut a = self.eval_operand(frame, &lhs);
                        let mut b = self.eval_operand(frame, &rhs);
                        Self::maybe_inject_operand(fault, dyn_id, 0, &mut a, frame);
                        Self::maybe_inject_operand(fault, dyn_id, 1, &mut b, frame);
                        let result = match eval_binop(op, ty, &a.value, &b.value) {
                            Ok(v) => v,
                            Err(e) => {
                                return self.finish(ExecStatus::Trap(e.to_string()), None, dyn_id);
                            }
                        };
                        let result = Self::maybe_inject_result(fault, dyn_id, result);
                        emit!(
                            frame,
                            inst_idx as u32,
                            Some(dst),
                            TraceOp::Bin {
                                op,
                                ty,
                                lhs: a.traced(),
                                rhs: b.traced(),
                                result,
                            }
                        );
                        let taint = TaintSet::union(&a.taint, &b.taint);
                        Self::set_reg(frame, dst, result, None, taint);
                    }
                    Inst::Cmp {
                        pred,
                        lhs,
                        rhs,
                        dst,
                    } => {
                        let mut a = self.eval_operand(frame, &lhs);
                        let mut b = self.eval_operand(frame, &rhs);
                        Self::maybe_inject_operand(fault, dyn_id, 0, &mut a, frame);
                        Self::maybe_inject_operand(fault, dyn_id, 1, &mut b, frame);
                        let result = eval_cmp(pred, &a.value, &b.value).unwrap_or(Value::I1(false));
                        let result = Self::maybe_inject_result(fault, dyn_id, result);
                        emit!(
                            frame,
                            inst_idx as u32,
                            Some(dst),
                            TraceOp::Cmp {
                                pred,
                                lhs: a.traced(),
                                rhs: b.traced(),
                                result,
                            }
                        );
                        let taint = TaintSet::union(&a.taint, &b.taint);
                        Self::set_reg(frame, dst, result, None, taint);
                    }
                    Inst::Cast { kind, to, src, dst } => {
                        let mut s = self.eval_operand(frame, &src);
                        Self::maybe_inject_operand(fault, dyn_id, 0, &mut s, frame);
                        let result = match eval_cast(kind, to, &s.value) {
                            Ok(v) => v,
                            Err(e) => {
                                return self.finish(ExecStatus::Trap(e.to_string()), None, dyn_id);
                            }
                        };
                        let result = Self::maybe_inject_result(fault, dyn_id, result);
                        emit!(
                            frame,
                            inst_idx as u32,
                            Some(dst),
                            TraceOp::Cast {
                                kind,
                                to,
                                src: s.traced(),
                                result,
                            }
                        );
                        Self::set_reg(frame, dst, result, None, s.taint);
                    }
                    Inst::Load { ty, addr, dst } => {
                        let mut a = self.eval_operand(frame, &addr);
                        Self::maybe_inject_operand(fault, dyn_id, 0, &mut a, frame);
                        let address = a.value.as_u64();
                        // A fault targeting the loaded value corrupts the
                        // memory element before the load consumes it.
                        if let Some(f) = fault {
                            if f.dyn_id == dyn_id
                                && f.target == FaultTarget::LoadValue
                                && self.memory.flip_mask(ty, address, f.mask).is_err()
                            {
                                return self.finish(
                                    ExecStatus::MemFault(format!(
                                        "fault injection at unmapped 0x{address:x}"
                                    )),
                                    None,
                                    dyn_id,
                                );
                            }
                        }
                        let value = match self.memory.load(ty, address) {
                            Ok(v) => v,
                            Err(e) => {
                                return self.finish(
                                    ExecStatus::MemFault(e.to_string()),
                                    None,
                                    dyn_id,
                                );
                            }
                        };
                        let value = Self::maybe_inject_result(fault, dyn_id, value);
                        let element = self.objects.locate(address);
                        emit!(
                            frame,
                            inst_idx as u32,
                            Some(dst),
                            TraceOp::Load {
                                ty,
                                addr: address,
                                addr_src: a.source,
                                element,
                                result: value,
                            }
                        );
                        let mut taint = mem_taint.get(&address).cloned().unwrap_or_default();
                        if let Some((o, e)) = element {
                            taint.insert(o, e);
                        }
                        Self::set_reg(frame, dst, value, element, taint);
                    }
                    Inst::Store { ty, value, addr } => {
                        let mut v = self.eval_operand(frame, &value);
                        let mut a = self.eval_operand(frame, &addr);
                        Self::maybe_inject_operand(fault, dyn_id, 0, &mut v, frame);
                        Self::maybe_inject_operand(fault, dyn_id, 1, &mut a, frame);
                        let address = a.value.as_u64();
                        // A fault targeting the store destination corrupts
                        // the element just before it is overwritten.
                        if let Some(f) = fault {
                            if f.dyn_id == dyn_id
                                && f.target == FaultTarget::StoreDest
                                && self.memory.flip_mask(ty, address, f.mask).is_err()
                            {
                                return self.finish(
                                    ExecStatus::MemFault(format!(
                                        "fault injection at unmapped 0x{address:x}"
                                    )),
                                    None,
                                    dyn_id,
                                );
                            }
                        }
                        let element = self.objects.locate(address);
                        let overwritten = self.memory.load(ty, address).unwrap_or(Value::zero(ty));
                        let depends = match element {
                            Some((o, e)) => v.taint.may_depend_on(o, e),
                            None => false,
                        };
                        if let Err(e) = self.memory.store(ty, address, v.value) {
                            return self.finish(ExecStatus::MemFault(e.to_string()), None, dyn_id);
                        }
                        emit!(
                            frame,
                            inst_idx as u32,
                            None,
                            TraceOp::Store {
                                ty,
                                addr: address,
                                addr_src: a.source,
                                element,
                                value: v.traced(),
                                overwritten,
                                value_depends_on_dest: depends,
                            }
                        );
                        if v.taint.is_empty() {
                            mem_taint.remove(&address);
                        } else {
                            mem_taint.insert(address, v.taint.clone());
                        }
                    }
                    Inst::Gep {
                        base,
                        index,
                        elem_size,
                        dst,
                    } => {
                        let mut b = self.eval_operand(frame, &base);
                        let mut i = self.eval_operand(frame, &index);
                        Self::maybe_inject_operand(fault, dyn_id, 0, &mut b, frame);
                        Self::maybe_inject_operand(fault, dyn_id, 1, &mut i, frame);
                        let address = b
                            .value
                            .as_u64()
                            .wrapping_add((i.value.as_i64() as u64).wrapping_mul(elem_size));
                        let result = Value::Ptr(address);
                        let result = Self::maybe_inject_result(fault, dyn_id, result);
                        emit!(
                            frame,
                            inst_idx as u32,
                            Some(dst),
                            TraceOp::Gep {
                                base: b.traced(),
                                index: i.traced(),
                                elem_size,
                                result,
                            }
                        );
                        let taint = TaintSet::union(&b.taint, &i.taint);
                        Self::set_reg(frame, dst, result, None, taint);
                    }
                    Inst::Select {
                        cond,
                        then_v,
                        else_v,
                        dst,
                    } => {
                        let mut c = self.eval_operand(frame, &cond);
                        let mut t = self.eval_operand(frame, &then_v);
                        let mut e = self.eval_operand(frame, &else_v);
                        Self::maybe_inject_operand(fault, dyn_id, 0, &mut c, frame);
                        Self::maybe_inject_operand(fault, dyn_id, 1, &mut t, frame);
                        Self::maybe_inject_operand(fault, dyn_id, 2, &mut e, frame);
                        let chosen = if c.value.is_truthy() { &t } else { &e };
                        let result = Self::maybe_inject_result(fault, dyn_id, chosen.value);
                        emit!(
                            frame,
                            inst_idx as u32,
                            Some(dst),
                            TraceOp::Select {
                                cond: c.traced(),
                                then_v: t.traced(),
                                else_v: e.traced(),
                                result,
                            }
                        );
                        let mut taint = TaintSet::union(&c.taint, &chosen.taint);
                        // The unchosen arm's dependences do not flow into the
                        // result value, but the condition's do.
                        taint.union_with(&c.taint);
                        let prov = chosen.element;
                        Self::set_reg(frame, dst, result, prov, taint);
                    }
                    Inst::CallIntrinsic { intr, args, dst } => {
                        let mut vals: Vec<OpVal> =
                            args.iter().map(|a| self.eval_operand(frame, a)).collect();
                        for (i, v) in vals.iter_mut().enumerate() {
                            Self::maybe_inject_operand(fault, dyn_id, i, v, frame);
                        }
                        let raw: Vec<Value> = vals.iter().map(|v| v.value).collect();
                        let result = match eval_intrinsic(intr, &raw) {
                            Ok(v) => v,
                            Err(e) => {
                                return self.finish(ExecStatus::Trap(e.to_string()), None, dyn_id);
                            }
                        };
                        let result = Self::maybe_inject_result(fault, dyn_id, result);
                        emit!(
                            frame,
                            inst_idx as u32,
                            Some(dst),
                            TraceOp::Intrinsic {
                                intr,
                                args: vals.iter().map(|v| v.traced()).collect(),
                                result,
                            }
                        );
                        let mut taint = TaintSet::empty();
                        for v in &vals {
                            taint.union_with(&v.taint);
                        }
                        Self::set_reg(frame, dst, result, None, taint);
                    }
                    Inst::Mov { src, dst } => {
                        let mut s = self.eval_operand(frame, &src);
                        Self::maybe_inject_operand(fault, dyn_id, 0, &mut s, frame);
                        let result = Self::maybe_inject_result(fault, dyn_id, s.value);
                        emit!(
                            frame,
                            inst_idx as u32,
                            Some(dst),
                            TraceOp::Mov {
                                src: s.traced(),
                                result,
                            }
                        );
                        Self::set_reg(frame, dst, result, s.element, s.taint);
                    }
                    Inst::Call {
                        func: callee,
                        args,
                        dst,
                    } => {
                        let mut vals: Vec<OpVal> =
                            args.iter().map(|a| self.eval_operand(frame, a)).collect();
                        for (i, v) in vals.iter_mut().enumerate() {
                            Self::maybe_inject_operand(fault, dyn_id, i, v, frame);
                        }
                        let callee_fn = self.module.function(callee);
                        let param_regs: Vec<RegId> =
                            callee_fn.params.iter().map(|(r, _)| *r).collect();
                        let callee_frame_id = next_frame_id;
                        next_frame_id += 1;
                        emit!(
                            frame,
                            inst_idx as u32,
                            dst,
                            TraceOp::Call {
                                callee,
                                args: vals.iter().map(|v| v.traced()).collect(),
                                callee_frame: callee_frame_id,
                                param_regs: param_regs.clone(),
                            }
                        );
                        let mut new_frame = self.new_frame(callee, callee_frame_id, dst);
                        for (v, r) in vals.iter().zip(param_regs.iter()) {
                            Self::set_reg(&mut new_frame, *r, v.value, v.element, v.taint.clone());
                        }
                        frames.push(new_frame);
                    }
                }
                dyn_id += 1;
            } else {
                // Terminator.
                let term = blk.term.clone();
                match term {
                    Terminator::Br { target } => {
                        // Unconditional branches carry no data and are not
                        // counted as operations.
                        let frame = &mut frames[frame_idx];
                        frame.block = target;
                        frame.inst = 0;
                    }
                    Terminator::CondBr {
                        cond,
                        then_b,
                        else_b,
                    } => {
                        let frame = &mut frames[frame_idx];
                        let mut c = self.eval_operand(frame, &cond);
                        Self::maybe_inject_operand(fault, dyn_id, 0, &mut c, frame);
                        let taken = c.value.is_truthy();
                        emit!(
                            frame,
                            TERMINATOR_INST,
                            None,
                            TraceOp::CondBr {
                                cond: c.traced(),
                                taken,
                            }
                        );
                        frame.block = if taken { then_b } else { else_b };
                        frame.inst = 0;
                        dyn_id += 1;
                    }
                    Terminator::Switch {
                        value,
                        cases,
                        default,
                    } => {
                        let frame = &mut frames[frame_idx];
                        let mut v = self.eval_operand(frame, &value);
                        Self::maybe_inject_operand(fault, dyn_id, 0, &mut v, frame);
                        let key = v.value.as_i64();
                        let mut target = default;
                        let mut taken_index = cases.len();
                        for (i, (case, blk)) in cases.iter().enumerate() {
                            if *case == key {
                                target = *blk;
                                taken_index = i;
                                break;
                            }
                        }
                        emit!(
                            frame,
                            TERMINATOR_INST,
                            None,
                            TraceOp::Switch {
                                value: v.traced(),
                                taken_index,
                            }
                        );
                        frame.block = target;
                        frame.inst = 0;
                        dyn_id += 1;
                    }
                    Terminator::Ret { value } => {
                        let frame = &mut frames[frame_idx];
                        let ret_ty = self.module.function(frame.func).ret_ty;
                        let mut v = value.map(|op| self.eval_operand(frame, &op));
                        if let Some(val) = v.as_mut() {
                            Self::maybe_inject_operand(fault, dyn_id, 0, val, frame);
                        }
                        let ret_val = match (&v, ret_ty) {
                            (Some(val), _) => Some(val.value),
                            (None, Some(t)) => Some(Value::zero(t)),
                            (None, None) => None,
                        };
                        let ret_dst = frame.ret_dst;
                        let frame_id_done = frame.frame_id;
                        let caller_frame_id = if frames.len() >= 2 {
                            Some(frames[frames.len() - 2].frame_id)
                        } else {
                            None
                        };
                        {
                            let frame = &frames[frame_idx];
                            if let Some(t) = sink.as_deref_mut() {
                                t.push(TraceRecord {
                                    id: dyn_id,
                                    frame: frame_id_done,
                                    func: frame.func,
                                    block: frame.block,
                                    inst: TERMINATOR_INST,
                                    dst: ret_dst,
                                    op: TraceOp::Ret {
                                        value: v.as_ref().map(|x| x.traced()),
                                        caller_frame: caller_frame_id,
                                        dst_in_caller: ret_dst,
                                    },
                                });
                            }
                        }
                        dyn_id += 1;
                        let (prov, taint) = v
                            .map(|x| (x.element, x.taint))
                            .unwrap_or((None, TaintSet::empty()));
                        frames.pop();
                        match frames.last_mut() {
                            Some(caller) => {
                                if let (Some(dst), Some(val)) = (ret_dst, ret_val) {
                                    Self::set_reg(caller, dst, val, prov, taint);
                                }
                            }
                            None => {
                                return self.finish(ExecStatus::Completed, ret_val, dyn_id);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Convenience: run a module's golden execution with default config.
pub fn run_golden(module: &Module) -> Result<ExecOutcome, VmError> {
    Ok(Vm::with_defaults(module)?.execute())
}

/// Convenience: run a module and record the trace with default config.
pub fn run_traced(module: &Module) -> Result<(ExecOutcome, Trace), VmError> {
    Ok(Vm::with_defaults(module)?.execute_traced())
}

/// Convenience: run a module and record the trace into the given backend
/// with default config.
pub fn run_traced_with(
    module: &Module,
    spec: &TraceBackendSpec,
) -> Result<(ExecOutcome, TraceData), VmError> {
    Vm::with_defaults(module)?.execute_traced_with(spec)
}

/// Convenience: run a module with a fault and default config.
pub fn run_with_fault(module: &Module, fault: &FaultSpec) -> Result<ExecOutcome, VmError> {
    Ok(Vm::with_defaults(module)?.execute_with_fault(fault))
}

#[cfg(test)]
mod tests {
    use super::*;
    use moard_ir::prelude::*;
    use moard_ir::verify::assert_verified;

    /// data[i] = i for i in 0..8, then sum them and return the sum.
    fn sum_module() -> Module {
        let mut m = Module::new("sum");
        let data = m.add_global(Global::zeroed("data", Type::F64, 8));
        let mut f = FunctionBuilder::new("main", &[], Some(Type::F64));
        f.for_loop(Operand::const_i64(0), Operand::const_i64(8), |f, i| {
            let fi = f.sitofp(Operand::Reg(i));
            f.store_elem(Type::F64, data, Operand::Reg(i), Operand::Reg(fi));
        });
        let acc = f.alloc_reg(Type::F64);
        f.mov(acc, Operand::const_f64(0.0));
        f.for_loop(Operand::const_i64(0), Operand::const_i64(8), |f, i| {
            let v = f.load_elem(Type::F64, data, Operand::Reg(i));
            let s = f.fadd(Operand::Reg(acc), Operand::Reg(v));
            f.mov(acc, Operand::Reg(s));
        });
        f.ret(Some(Operand::Reg(acc)));
        m.add_function(f.finish());
        assert_verified(&m);
        m
    }

    #[test]
    fn golden_run_computes_expected_sum() {
        let m = sum_module();
        let out = run_golden(&m).unwrap();
        assert!(out.status.is_completed());
        assert_eq!(out.return_f64(), 28.0);
        assert_eq!(
            out.global_f64("data"),
            vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]
        );
    }

    #[test]
    fn traced_run_matches_golden_and_has_records() {
        let m = sum_module();
        let (out, trace) = run_traced(&m).unwrap();
        assert_eq!(out.return_f64(), 28.0);
        assert!(!trace.is_empty());
        // Every record's id matches its index.
        for (i, r) in trace.iter().enumerate() {
            assert_eq!(r.id as usize, i);
        }
        // There are exactly 8 stores and 8 loads touching `data`.
        let data_obj = ObjectId(0);
        let stores = trace
            .iter()
            .filter(
                |r| matches!(&r.op, TraceOp::Store { element: Some((o, _)), .. } if *o == data_obj),
            )
            .count();
        let loads = trace
            .iter()
            .filter(
                |r| matches!(&r.op, TraceOp::Load { element: Some((o, _)), .. } if *o == data_obj),
            )
            .count();
        assert_eq!(stores, 8);
        assert_eq!(loads, 8);
    }

    #[test]
    fn store_dependence_flag_distinguishes_overwrite_from_accumulate() {
        // a[0] = 1.0            (pure overwrite, does not depend on a[0])
        // a[0] = a[0] + 1.0     (accumulate, depends on a[0])
        let mut m = Module::new("dep");
        let a = m.add_global(Global::zeroed("a", Type::F64, 1));
        let mut f = FunctionBuilder::new("main", &[], None);
        f.store_elem(Type::F64, a, Operand::const_i64(0), Operand::const_f64(1.0));
        let v = f.load_elem(Type::F64, a, Operand::const_i64(0));
        let s = f.fadd(Operand::Reg(v), Operand::const_f64(1.0));
        f.store_elem(Type::F64, a, Operand::const_i64(0), Operand::Reg(s));
        f.ret(None);
        m.add_function(f.finish());
        assert_verified(&m);

        let (_, trace) = run_traced(&m).unwrap();
        let stores: Vec<&TraceRecord> = trace
            .iter()
            .filter(|r| matches!(r.op, TraceOp::Store { .. }))
            .collect();
        assert_eq!(stores.len(), 2);
        match (&stores[0].op, &stores[1].op) {
            (
                TraceOp::Store {
                    value_depends_on_dest: d0,
                    ..
                },
                TraceOp::Store {
                    value_depends_on_dest: d1,
                    ..
                },
            ) => {
                assert!(!d0, "plain overwrite must not depend on destination");
                assert!(d1, "accumulation must depend on destination");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn fault_on_overwritten_element_is_masked() {
        // Flipping any bit of data[i] right before the first-phase store
        // (which overwrites it) must leave the outcome identical.
        let m = sum_module();
        let (golden, trace) = run_traced(&m).unwrap();
        // Find the first store to `data`.
        let store = trace
            .iter()
            .find(|r| matches!(r.op, TraceOp::Store { .. }))
            .unwrap();
        let fault = FaultSpec::single_bit(store.id, FaultTarget::StoreDest, 63);
        let out = run_with_fault(&m, &fault).unwrap();
        assert!(out.bits_identical(&golden));
    }

    #[test]
    fn fault_on_loaded_element_changes_sum() {
        let m = sum_module();
        let (golden, trace) = run_traced(&m).unwrap();
        // Find a load of data[3] (value 3.0) and flip its sign bit in memory.
        let load = trace
            .iter()
            .find(|r| matches!(&r.op, TraceOp::Load { result, .. } if result.as_f64() == 3.0))
            .unwrap();
        let fault = FaultSpec::single_bit(load.id, FaultTarget::LoadValue, 63);
        let out = run_with_fault(&m, &fault).unwrap();
        assert!(out.status.is_completed());
        assert_eq!(out.return_f64(), 22.0); // 28 - 2*3
        assert!(!out.bits_identical(&golden));
    }

    #[test]
    fn corrupted_index_can_cause_memory_fault() {
        // Load data[i] where i is corrupted to a huge value -> out of bounds.
        let mut m = Module::new("idxfault");
        let data = m.add_global(Global::zeroed("data", Type::F64, 4));
        let idx = m.add_global(Global::from_i64("idx", &[1]));
        let mut f = FunctionBuilder::new("main", &[], Some(Type::F64));
        let i = f.load_elem(Type::I64, idx, Operand::const_i64(0));
        let v = f.load_elem(Type::F64, data, Operand::Reg(i));
        f.ret(Some(Operand::Reg(v)));
        m.add_function(f.finish());
        assert_verified(&m);

        let (_, trace) = run_traced(&m).unwrap();
        let idx_load = trace
            .iter()
            .find(|r| matches!(&r.op, TraceOp::Load { ty: Type::I64, .. }))
            .unwrap();
        // Flip a high bit of the index.
        let fault = FaultSpec::single_bit(idx_load.id, FaultTarget::LoadValue, 40);
        let out = run_with_fault(&m, &fault).unwrap();
        assert!(matches!(out.status, ExecStatus::MemFault(_)));
    }

    #[test]
    fn timeout_on_runaway_loop() {
        let mut m = Module::new("spin");
        let g = m.add_global(Global::zeroed("g", Type::I64, 1));
        let mut f = FunctionBuilder::new("main", &[], None);
        // while (g[0] == 0) {}  -- never terminates since nothing writes g.
        f.loop_while(
            |f| {
                let v = f.load_elem(Type::I64, g, Operand::const_i64(0));
                Operand::Reg(f.cmp(CmpPred::Eq, Operand::Reg(v), Operand::const_i64(0)))
            },
            |_f| {},
        );
        f.ret(None);
        m.add_function(f.finish());
        assert_verified(&m);
        let vm = Vm::new(
            &m,
            VmConfig {
                max_steps: 10_000,
                ..VmConfig::default()
            },
        )
        .unwrap();
        let out = vm.execute();
        assert_eq!(out.status, ExecStatus::Timeout);
    }

    #[test]
    fn function_calls_pass_arguments_and_return_values() {
        let mut m = Module::new("call");
        let out_g = m.add_global(Global::zeroed("out", Type::F64, 1));
        // double square(double x) { return x * x; }
        let mut sq = FunctionBuilder::new("square", &[Type::F64], Some(Type::F64));
        let x = sq.param(0);
        let xx = sq.fmul(Operand::Reg(x), Operand::Reg(x));
        sq.ret(Some(Operand::Reg(xx)));
        let sq_id = m.add_function(sq.finish());

        let mut f = FunctionBuilder::new("main", &[], Some(Type::F64));
        let r = f
            .call(sq_id, &[Operand::const_f64(3.0)], Some(Type::F64))
            .unwrap();
        f.store_elem(Type::F64, out_g, Operand::const_i64(0), Operand::Reg(r));
        f.ret(Some(Operand::Reg(r)));
        m.add_function(f.finish());
        assert_verified(&m);

        let out = run_golden(&m).unwrap();
        assert_eq!(out.return_f64(), 9.0);
        assert_eq!(out.global_f64("out"), vec![9.0]);

        // The trace contains call and ret records linked by frame ids.
        let (_, trace) = run_traced(&m).unwrap();
        let call = trace
            .iter()
            .find(|r| matches!(r.op, TraceOp::Call { .. }))
            .unwrap();
        let ret = trace
            .iter()
            .find(|r| {
                matches!(
                    &r.op,
                    TraceOp::Ret {
                        caller_frame: Some(_),
                        ..
                    }
                )
            })
            .unwrap();
        if let (TraceOp::Call { callee_frame, .. }, TraceOp::Ret { caller_frame, .. }) =
            (&call.op, &ret.op)
        {
            assert_eq!(ret.frame, *callee_frame);
            assert_eq!(*caller_frame, Some(call.frame));
        }
    }

    #[test]
    fn division_by_zero_traps() {
        let mut m = Module::new("trap");
        m.add_global(Global::zeroed("pad", Type::I64, 1));
        let mut f = FunctionBuilder::new("main", &[], Some(Type::I64));
        let d = f.sdiv(Operand::const_i64(1), Operand::const_i64(0));
        f.ret(Some(Operand::Reg(d)));
        m.add_function(f.finish());
        let out = run_golden(&m).unwrap();
        assert!(matches!(out.status, ExecStatus::Trap(_)));
    }

    #[test]
    fn operand_fault_persists_in_register() {
        // acc starts at 10; the corrupted consumption of acc in the fadd must
        // also persist for the final return of acc (register write-back).
        let mut m = Module::new("persist");
        let sink = m.add_global(Global::zeroed("sink", Type::F64, 1));
        let mut f = FunctionBuilder::new("main", &[], Some(Type::F64));
        let acc = f.alloc_reg(Type::F64);
        f.mov(acc, Operand::const_f64(10.0));
        let s = f.fadd(Operand::Reg(acc), Operand::const_f64(1.0));
        f.store_elem(Type::F64, sink, Operand::const_i64(0), Operand::Reg(s));
        f.ret(Some(Operand::Reg(acc)));
        m.add_function(f.finish());
        let (_, trace) = run_traced(&m).unwrap();
        let fadd = trace
            .iter()
            .find(|r| {
                matches!(
                    &r.op,
                    TraceOp::Bin {
                        op: BinOp::FAdd,
                        ..
                    }
                )
            })
            .unwrap();
        // Flip the sign of acc as consumed by the fadd.
        let fault = FaultSpec::single_bit(fadd.id, FaultTarget::Operand(0), 63);
        let out = run_with_fault(&m, &fault).unwrap();
        assert_eq!(out.global_f64("sink"), vec![-9.0]);
        assert_eq!(
            out.return_f64(),
            -10.0,
            "corruption persists in the register"
        );
    }

    #[test]
    fn switch_terminator_dispatches() {
        let mut m = Module::new("switch");
        let out_g = m.add_global(Global::zeroed("out", Type::I64, 1));
        let sel = m.add_global(Global::from_i64("sel", &[2]));
        let mut f = FunctionBuilder::new("main", &[], None);
        let v = f.load_elem(Type::I64, sel, Operand::const_i64(0));
        let b0 = f.new_block("case0");
        let b1 = f.new_block("case1");
        let bd = f.new_block("default");
        let join = f.new_block("join");
        f.terminate(Terminator::Switch {
            value: Operand::Reg(v),
            cases: vec![(0, b0), (2, b1)],
            default: bd,
        });
        f.switch_to(b0);
        f.store_elem(
            Type::I64,
            out_g,
            Operand::const_i64(0),
            Operand::const_i64(100),
        );
        f.terminate(Terminator::Br { target: join });
        f.switch_to(b1);
        f.store_elem(
            Type::I64,
            out_g,
            Operand::const_i64(0),
            Operand::const_i64(200),
        );
        f.terminate(Terminator::Br { target: join });
        f.switch_to(bd);
        f.store_elem(
            Type::I64,
            out_g,
            Operand::const_i64(0),
            Operand::const_i64(300),
        );
        f.terminate(Terminator::Br { target: join });
        f.switch_to(join);
        f.ret(None);
        m.add_function(f.finish());
        assert_verified(&m);
        let out = run_golden(&m).unwrap();
        assert_eq!(out.globals["out"][0].as_i64(), 200);
    }

    #[test]
    fn paged_backend_records_the_identical_trace() {
        use crate::trace::TraceStorage;
        let m = sum_module();
        let (out_mem, trace) = run_traced(&m).unwrap();
        // Small segments so the sum workload spans several of them.
        let spec = TraceBackendSpec::Paged {
            dir: None,
            segment_records: 16,
        };
        let (out_paged, data) = run_traced_with(&m, &spec).unwrap();
        assert!(out_mem.bits_identical(&out_paged));
        assert_eq!(data.backend_name(), "paged");
        assert_eq!(data.len(), trace.len());
        assert_eq!(data.stats(), trace.stats());
        let mut reader = data.new_reader();
        for rec in trace.iter() {
            assert_eq!(reader.fetch(rec.id).as_ref(), Some(rec));
        }
        assert_eq!(
            data.touching_ids(ObjectId(0)),
            trace.touching_ids(ObjectId(0))
        );
    }

    #[test]
    fn registry_is_stable_across_instances() {
        let m = sum_module();
        let vm1 = Vm::with_defaults(&m).unwrap();
        let vm2 = Vm::with_defaults(&m).unwrap();
        let o1: Vec<(String, u64)> = vm1
            .objects()
            .iter()
            .map(|o| (o.name.clone(), o.base))
            .collect();
        let o2: Vec<(String, u64)> = vm2
            .objects()
            .iter()
            .map(|o| (o.name.clone(), o.base))
            .collect();
        assert_eq!(o1, o2);
    }
}
