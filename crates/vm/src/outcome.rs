//! Execution outcomes and outcome comparison.
//!
//! The MOARD fault model judges a corrupted run against the error-free
//! ("golden") run at the level of the *application outcome*: bit-identical,
//! numerically different but acceptable under the application's own fidelity
//! criterion, incorrect, or crashed.  This module holds the raw outcome data;
//! the acceptance criteria themselves live with each workload.

use moard_ir::Value;
use std::collections::BTreeMap;
use std::fmt;

/// How an execution terminated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecStatus {
    /// Ran to completion.
    Completed,
    /// A memory access fault (the analogue of a segmentation fault).
    MemFault(String),
    /// An arithmetic trap (division by zero, overflow in division).
    Trap(String),
    /// The step budget was exhausted (e.g. a corrupted loop bound produced a
    /// runaway loop).
    Timeout,
}

impl ExecStatus {
    /// True only for [`ExecStatus::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, ExecStatus::Completed)
    }
}

impl fmt::Display for ExecStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecStatus::Completed => write!(f, "completed"),
            ExecStatus::MemFault(m) => write!(f, "memory fault: {m}"),
            ExecStatus::Trap(m) => write!(f, "trap: {m}"),
            ExecStatus::Timeout => write!(f, "timeout"),
        }
    }
}

/// The observable outcome of one execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// Termination status.
    pub status: ExecStatus,
    /// Value returned by the entry function (if it completed and returns one).
    pub return_value: Option<Value>,
    /// Final contents of every global data object, keyed by object name.
    pub globals: BTreeMap<String, Vec<Value>>,
    /// Number of dynamic instructions executed.
    pub steps: u64,
}

impl ExecOutcome {
    /// Bit-exact equality of the application-visible outcome: status,
    /// return value, and every global's final contents.
    ///
    /// This is the "numerically the same as the error-free case" criterion
    /// the model uses to decide that *all* errors were masked.
    pub fn bits_identical(&self, other: &ExecOutcome) -> bool {
        if self.status != other.status {
            return false;
        }
        match (&self.return_value, &other.return_value) {
            (Some(a), Some(b)) if !a.bits_eq(b) => return false,
            (Some(_), None) | (None, Some(_)) => return false,
            _ => {}
        }
        if self.globals.len() != other.globals.len() {
            return false;
        }
        for (name, vals) in &self.globals {
            match other.globals.get(name) {
                Some(o) if o.len() == vals.len() => {
                    if vals.iter().zip(o.iter()).any(|(a, b)| !a.bits_eq(b)) {
                        return false;
                    }
                }
                _ => return false,
            }
        }
        true
    }

    /// Final contents of a global as `f64` values (empty if absent).
    pub fn global_f64(&self, name: &str) -> Vec<f64> {
        self.globals
            .get(name)
            .map(|vs| vs.iter().map(|v| v.as_f64()).collect())
            .unwrap_or_default()
    }

    /// Return value as `f64` (0.0 if absent).
    pub fn return_f64(&self) -> f64 {
        self.return_value.map(|v| v.as_f64()).unwrap_or(0.0)
    }

    /// Maximum relative element-wise difference between a global in `self`
    /// and the same global in `golden`.  Returns `f64::INFINITY` on shape
    /// mismatch or if the global is missing.
    pub fn max_rel_diff(&self, golden: &ExecOutcome, name: &str) -> f64 {
        let a = self.global_f64(name);
        let b = golden.global_f64(name);
        if a.len() != b.len() || a.is_empty() {
            return f64::INFINITY;
        }
        let mut worst: f64 = 0.0;
        for (x, y) in a.iter().zip(b.iter()) {
            let denom = y.abs().max(1e-300);
            let d = if x.is_finite() {
                (x - y).abs() / denom.max(1.0_f64.min(denom))
            } else {
                f64::INFINITY
            };
            let d = if y.abs() < 1e-12 { (x - y).abs() } else { d };
            worst = worst.max(d);
        }
        worst
    }
}

/// Classification of a fault-injected run relative to the golden run.
///
/// This is the verdict returned by the deterministic fault injector and
/// consumed by the model's propagation- and algorithm-level analyses
/// (paper §III-D and §III-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutcomeClass {
    /// Bit-identical to the golden run: every error was eventually masked at
    /// the operation level during propagation.
    Identical,
    /// Numerically different but acceptable under the application's fidelity
    /// criterion: algorithm-level masking.
    Acceptable,
    /// Completed but unacceptable output: silent data corruption.
    Incorrect,
    /// Crashed (memory fault / trap) or timed out.
    Crashed,
}

impl OutcomeClass {
    /// "Success" in the sense of fault-injection campaigns: the application
    /// outcome is still correct (identical or acceptable).
    pub fn is_success(self) -> bool {
        matches!(self, OutcomeClass::Identical | OutcomeClass::Acceptable)
    }
}

impl fmt::Display for OutcomeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OutcomeClass::Identical => "identical",
            OutcomeClass::Acceptable => "acceptable",
            OutcomeClass::Incorrect => "incorrect",
            OutcomeClass::Crashed => "crashed",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(vals: &[f64]) -> ExecOutcome {
        let mut globals = BTreeMap::new();
        globals.insert(
            "x".to_string(),
            vals.iter().map(|&v| Value::F64(v)).collect(),
        );
        ExecOutcome {
            status: ExecStatus::Completed,
            return_value: Some(Value::F64(1.0)),
            globals,
            steps: 10,
        }
    }

    #[test]
    fn bits_identical_detects_equality_and_difference() {
        let a = outcome(&[1.0, 2.0]);
        let b = outcome(&[1.0, 2.0]);
        let c = outcome(&[1.0, 2.0000000001]);
        assert!(a.bits_identical(&b));
        assert!(!a.bits_identical(&c));
    }

    #[test]
    fn status_mismatch_is_not_identical() {
        let a = outcome(&[1.0]);
        let mut b = outcome(&[1.0]);
        b.status = ExecStatus::Timeout;
        assert!(!a.bits_identical(&b));
        assert!(!b.status.is_completed());
    }

    #[test]
    fn max_rel_diff_measures_perturbation() {
        let golden = outcome(&[1.0, 100.0]);
        let close = outcome(&[1.0 + 1e-12, 100.0]);
        let far = outcome(&[2.0, 100.0]);
        assert!(golden.max_rel_diff(&golden, "x") == 0.0);
        assert!(close.max_rel_diff(&golden, "x") < 1e-9);
        assert!(far.max_rel_diff(&golden, "x") > 0.5);
        assert!(golden.max_rel_diff(&golden, "missing").is_infinite());
    }

    #[test]
    fn outcome_class_success() {
        assert!(OutcomeClass::Identical.is_success());
        assert!(OutcomeClass::Acceptable.is_success());
        assert!(!OutcomeClass::Incorrect.is_success());
        assert!(!OutcomeClass::Crashed.is_success());
        assert_eq!(OutcomeClass::Crashed.to_string(), "crashed");
    }

    #[test]
    fn global_f64_and_return_f64() {
        let a = outcome(&[3.0, 4.0]);
        assert_eq!(a.global_f64("x"), vec![3.0, 4.0]);
        assert!(a.global_f64("nope").is_empty());
        assert_eq!(a.return_f64(), 1.0);
    }
}
