//! Bounded dependence ("taint") sets.
//!
//! The interpreter tracks, for every live register value and every stored
//! memory word, which data-object elements the value was computed from.  The
//! aDVF operation-level analysis needs this for exactly one question — the
//! one raised by Statement B of the paper's LU example (`sum[m] = sum[m] +
//! ...`): *does the value being stored to element `e` depend on the current
//! value of `e`?*  If it does, the store does **not** mask an existing error
//! in `e`; if it does not (a plain overwrite, Statement A), it does.
//!
//! Dependence sets are bounded: once a value depends on more than
//! [`TAINT_CAP`] distinct elements the set saturates and conservatively
//! answers "maybe depends" to every query.  This keeps tracing O(1) per
//! operation while never letting the analysis over-count masking events.

use crate::objects::ObjectId;

/// Maximum number of distinct elements tracked per value.
pub const TAINT_CAP: usize = 24;

/// A bounded set of `(object, element)` pairs a value depends on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaintSet {
    elems: Vec<(ObjectId, u64)>,
    saturated: bool,
}

impl TaintSet {
    /// The empty set (value depends on no data-object element).
    pub fn empty() -> Self {
        TaintSet::default()
    }

    /// A singleton set.
    pub fn singleton(obj: ObjectId, elem: u64) -> Self {
        TaintSet {
            elems: vec![(obj, elem)],
            saturated: false,
        }
    }

    /// True if the set is empty and not saturated.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty() && !self.saturated
    }

    /// True once the set has overflowed and answers conservatively.
    pub fn is_saturated(&self) -> bool {
        self.saturated
    }

    /// Number of tracked elements (meaningless once saturated).
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Insert a dependence.
    pub fn insert(&mut self, obj: ObjectId, elem: u64) {
        if self.saturated {
            return;
        }
        if self.elems.contains(&(obj, elem)) {
            return;
        }
        if self.elems.len() >= TAINT_CAP {
            self.saturated = true;
            self.elems.clear();
            return;
        }
        self.elems.push((obj, elem));
    }

    /// Union another set into this one.
    pub fn union_with(&mut self, other: &TaintSet) {
        if other.saturated {
            self.saturated = true;
            self.elems.clear();
            return;
        }
        for &(o, e) in &other.elems {
            self.insert(o, e);
            if self.saturated {
                return;
            }
        }
    }

    /// Union of two sets.
    pub fn union(a: &TaintSet, b: &TaintSet) -> TaintSet {
        let mut out = a.clone();
        out.union_with(b);
        out
    }

    /// Does the value (possibly) depend on element `elem` of `obj`?
    ///
    /// Saturated sets answer `true` for every query (conservative).
    pub fn may_depend_on(&self, obj: ObjectId, elem: u64) -> bool {
        self.saturated || self.elems.contains(&(obj, elem))
    }

    /// Clear to the empty set.
    pub fn clear(&mut self) {
        self.elems.clear();
        self.saturated = false;
    }

    /// Iterate over tracked dependences (empty when saturated).
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, u64)> + '_ {
        self.elems.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut t = TaintSet::empty();
        assert!(t.is_empty());
        t.insert(ObjectId(0), 3);
        t.insert(ObjectId(1), 0);
        t.insert(ObjectId(0), 3); // duplicate
        assert_eq!(t.len(), 2);
        assert!(t.may_depend_on(ObjectId(0), 3));
        assert!(!t.may_depend_on(ObjectId(0), 4));
    }

    #[test]
    fn union_merges_dependences() {
        let a = TaintSet::singleton(ObjectId(0), 1);
        let b = TaintSet::singleton(ObjectId(0), 2);
        let u = TaintSet::union(&a, &b);
        assert!(u.may_depend_on(ObjectId(0), 1));
        assert!(u.may_depend_on(ObjectId(0), 2));
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn saturation_is_conservative() {
        let mut t = TaintSet::empty();
        for i in 0..(TAINT_CAP as u64 + 5) {
            t.insert(ObjectId(0), i);
        }
        assert!(t.is_saturated());
        // Conservative: everything "may depend".
        assert!(t.may_depend_on(ObjectId(9), 999));
        assert!(!t.is_empty());
    }

    #[test]
    fn union_with_saturated_saturates() {
        let mut sat = TaintSet::empty();
        for i in 0..(TAINT_CAP as u64 + 1) {
            sat.insert(ObjectId(1), i);
        }
        let mut t = TaintSet::singleton(ObjectId(0), 0);
        t.union_with(&sat);
        assert!(t.is_saturated());
    }

    #[test]
    fn clear_resets() {
        let mut t = TaintSet::singleton(ObjectId(0), 1);
        t.clear();
        assert!(t.is_empty());
        assert!(!t.is_saturated());
    }

    #[test]
    fn singleton_is_queryable() {
        let t = TaintSet::singleton(ObjectId(2), 7);
        assert!(t.may_depend_on(ObjectId(2), 7));
        assert!(!t.may_depend_on(ObjectId(2), 8));
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![(ObjectId(2), 7)]);
    }
}
