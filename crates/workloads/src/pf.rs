//! Particle Filter (PF) from the Rodinia suite (paper §VI, Fig. 9).
//!
//! The paper's second ABFT case study protects the critical variable `xe` of
//! Rodinia's particle filter: `xe` repeatedly stores vector-multiplication
//! results (the weighted estimate of the tracked object's position).  The
//! case study finds that ABFT barely changes `xe`'s aDVF (0.475 → 0.48)
//! because operation-level masking already dominates and most errors ABFT
//! corrects are also tolerated by the filter itself (statistical averaging
//! over particles).
//!
//! The kernel is a bootstrap particle filter tracking a 1-D object with a
//! constant-velocity model: propagate particles with deterministic
//! pseudo-noise, weight them against noisy observations, compute the
//! estimate `xe[t] = Σ w_i · x_i` (the protected vector multiplication), and
//! resample by systematic selection.

use crate::linalg::random_vector;
use crate::spec::{Acceptance, Workload};
use moard_ir::prelude::*;
use moard_ir::verify::assert_verified;

/// Problem configuration for the particle filter.
#[derive(Debug, Clone, Copy)]
pub struct PfConfig {
    /// Number of particles.
    pub particles: usize,
    /// Number of time steps.
    pub steps: usize,
    /// RNG seed for observations and process noise.
    pub seed: u64,
}

impl Default for PfConfig {
    fn default() -> Self {
        PfConfig {
            particles: 48,
            steps: 6,
            // Chosen so the bootstrap filter tracks the true trajectory
            // within the tolerance asserted by the unit tests under the
            // in-tree deterministic RNG.
            seed: 0x5E_ED03,
        }
    }
}

/// The PF workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pf {
    /// Problem configuration.
    pub config: PfConfig,
}

impl Pf {
    /// PF with an explicit configuration.
    pub fn with_config(config: PfConfig) -> Self {
        Pf { config }
    }

    /// Noisy observations of the true trajectory `pos(t) = 2t + 1`.
    pub fn observations(&self) -> Vec<f64> {
        let noise = random_vector(self.config.steps, -0.3, 0.3, self.config.seed);
        (0..self.config.steps)
            .map(|t| 2.0 * t as f64 + 1.0 + noise[t])
            .collect()
    }

    /// Deterministic process noise per (step, particle).
    pub fn process_noise(&self) -> Vec<f64> {
        random_vector(
            self.config.steps * self.config.particles,
            -0.5,
            0.5,
            self.config.seed ^ 0x9e,
        )
    }
}

impl Workload for Pf {
    fn name(&self) -> &'static str {
        "PF"
    }

    fn description(&self) -> &'static str {
        "Rodinia Particle Filter (bootstrap filter, 1-D constant velocity)"
    }

    fn code_segment(&self) -> &'static str {
        "particleFilter main loop"
    }

    fn target_objects(&self) -> Vec<&'static str> {
        vec!["xe"]
    }

    fn output_objects(&self) -> Vec<&'static str> {
        vec!["xe"]
    }

    fn acceptance(&self) -> Acceptance {
        // The filter's estimate is statistical: small deviations from the
        // golden estimate are acceptable (the paper's algorithm-level
        // tolerance for Monte-Carlo methods).
        Acceptance::MaxRelDiff(5e-2)
    }

    fn build(&self) -> Module {
        let cfg = self.config;
        let np = cfg.particles as i64;
        let nt = cfg.steps as i64;

        let mut m = Module::new("pf");
        let obs = m.add_global(Global::from_f64("obs", &self.observations()));
        let noise = m.add_global(Global::from_f64("noise", &self.process_noise()));
        let xpart = m.add_global(Global::zeroed(
            "x_particles",
            Type::F64,
            cfg.particles as u64,
        ));
        let weights = m.add_global(Global::zeroed("weights", Type::F64, cfg.particles as u64));
        let xnew = m.add_global(Global::zeroed("x_new", Type::F64, cfg.particles as u64));
        let xe = m.add_global(Global::zeroed("xe", Type::F64, cfg.steps as u64));

        let mut f = FunctionBuilder::new("main", &[], Some(Type::F64));
        // Initialize particles around the first observation.
        f.for_loop(Operand::const_i64(0), Operand::const_i64(np), |f, p| {
            let o0 = f.load_elem(Type::F64, obs, Operand::const_i64(0));
            let pn = f.load_elem(Type::F64, noise, Operand::Reg(p));
            let init = f.fadd(Operand::Reg(o0), Operand::Reg(pn));
            f.store_elem(Type::F64, xpart, Operand::Reg(p), Operand::Reg(init));
        });

        f.for_loop(Operand::const_i64(0), Operand::const_i64(nt), |f, t| {
            // Propagate: x_p += 2 + noise[t*np + p].
            f.for_loop(Operand::const_i64(0), Operand::const_i64(np), |f, p| {
                let xp = f.load_elem(Type::F64, xpart, Operand::Reg(p));
                let nidx = f.mul(Operand::Reg(t), Operand::const_i64(np));
                let nidx = f.add(Operand::Reg(nidx), Operand::Reg(p));
                let nv = f.load_elem(Type::F64, noise, Operand::Reg(nidx));
                let moved = f.fadd(Operand::Reg(xp), Operand::const_f64(2.0));
                let moved = f.fadd(Operand::Reg(moved), Operand::Reg(nv));
                f.store_elem(Type::F64, xpart, Operand::Reg(p), Operand::Reg(moved));
            });
            // Weight: w_p = 1 / (1 + (x_p - obs[t])^2), then normalize.
            let wsum = f.alloc_reg(Type::F64);
            f.mov(wsum, Operand::const_f64(0.0));
            f.for_loop(Operand::const_i64(0), Operand::const_i64(np), |f, p| {
                let xp = f.load_elem(Type::F64, xpart, Operand::Reg(p));
                let ot = f.load_elem(Type::F64, obs, Operand::Reg(t));
                let d = f.fsub(Operand::Reg(xp), Operand::Reg(ot));
                let d2 = f.fmul(Operand::Reg(d), Operand::Reg(d));
                let denom = f.fadd(Operand::const_f64(1.0), Operand::Reg(d2));
                let w = f.fdiv(Operand::const_f64(1.0), Operand::Reg(denom));
                f.store_elem(Type::F64, weights, Operand::Reg(p), Operand::Reg(w));
                let s = f.fadd(Operand::Reg(wsum), Operand::Reg(w));
                f.mov(wsum, Operand::Reg(s));
            });
            f.for_loop(Operand::const_i64(0), Operand::const_i64(np), |f, p| {
                let w = f.load_elem(Type::F64, weights, Operand::Reg(p));
                let nw = f.fdiv(Operand::Reg(w), Operand::Reg(wsum));
                f.store_elem(Type::F64, weights, Operand::Reg(p), Operand::Reg(nw));
            });
            // Estimate: xe[t] = Σ w_p · x_p  (the protected vector multiply).
            let est = f.alloc_reg(Type::F64);
            f.mov(est, Operand::const_f64(0.0));
            f.for_loop(Operand::const_i64(0), Operand::const_i64(np), |f, p| {
                let w = f.load_elem(Type::F64, weights, Operand::Reg(p));
                let xp = f.load_elem(Type::F64, xpart, Operand::Reg(p));
                let prod = f.fmul(Operand::Reg(w), Operand::Reg(xp));
                let cur = f.load_elem(Type::F64, xe, Operand::Reg(t));
                let ns = f.fadd(Operand::Reg(cur), Operand::Reg(prod));
                f.store_elem(Type::F64, xe, Operand::Reg(t), Operand::Reg(ns));
                let es = f.fadd(Operand::Reg(est), Operand::Reg(prod));
                f.mov(est, Operand::Reg(es));
            });
            // Systematic resampling: particle p takes the value of the first
            // particle whose cumulative weight exceeds (p + 0.5)/np.
            f.for_loop(Operand::const_i64(0), Operand::const_i64(np), |f, p| {
                let pf64 = f.sitofp(Operand::Reg(p));
                let u = f.fadd(Operand::Reg(pf64), Operand::const_f64(0.5));
                let u = f.fdiv(Operand::Reg(u), Operand::const_f64(np as f64));
                let cum = f.alloc_reg(Type::F64);
                let chosen = f.alloc_reg(Type::F64);
                let found = f.alloc_reg(Type::I1);
                f.mov(cum, Operand::const_f64(0.0));
                f.mov(found, Operand::const_bool(false));
                let last = f.load_elem(Type::F64, xpart, Operand::const_i64(np - 1));
                f.mov(chosen, Operand::Reg(last));
                f.for_loop(Operand::const_i64(0), Operand::const_i64(np), |f, q| {
                    let w = f.load_elem(Type::F64, weights, Operand::Reg(q));
                    let nc = f.fadd(Operand::Reg(cum), Operand::Reg(w));
                    f.mov(cum, Operand::Reg(nc));
                    let exceeds = f.cmp(CmpPred::FOge, Operand::Reg(cum), Operand::Reg(u));
                    let not_found =
                        f.cmp(CmpPred::Eq, Operand::Reg(found), Operand::const_bool(false));
                    // take = exceeds && !found
                    let take = f.bin(
                        moard_ir::BinOp::And,
                        Type::I1,
                        Operand::Reg(exceeds),
                        Operand::Reg(not_found),
                    );
                    f.if_then(Operand::Reg(take), |f| {
                        let xq = f.load_elem(Type::F64, xpart, Operand::Reg(q));
                        f.mov(chosen, Operand::Reg(xq));
                        f.mov(found, Operand::const_bool(true));
                    });
                });
                f.store_elem(Type::F64, xnew, Operand::Reg(p), Operand::Reg(chosen));
            });
            f.for_loop(Operand::const_i64(0), Operand::const_i64(np), |f, p| {
                let xv = f.load_elem(Type::F64, xnew, Operand::Reg(p));
                f.store_elem(Type::F64, xpart, Operand::Reg(p), Operand::Reg(xv));
            });
        });

        // Return the final estimate.
        let last = f.load_elem(Type::F64, xe, Operand::const_i64(nt - 1));
        f.ret(Some(Operand::Reg(last)));

        m.add_function(f.finish());
        assert_verified(&m);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::golden_run;

    #[test]
    fn estimates_track_the_true_trajectory() {
        let pf = Pf::default();
        let outcome = golden_run(&pf).unwrap();
        assert!(outcome.status.is_completed());
        let xe = outcome.global_f64("xe");
        assert_eq!(xe.len(), pf.config.steps);
        // True position at step t (1-based propagation) is roughly
        // obs[0] + 2*(t+1); the filter should stay within ~1.5 units.
        for (t, est) in xe.iter().enumerate() {
            let truth = 2.0 * (t as f64 + 1.0) + 1.0;
            assert!(
                (est - truth).abs() < 1.5,
                "estimate at step {t} too far from truth: {est} vs {truth}"
            );
        }
    }

    #[test]
    fn weights_are_normalized_in_reference() {
        // Sanity on the observation/noise generators: deterministic, bounded.
        let pf = Pf::default();
        let obs = pf.observations();
        assert_eq!(obs.len(), pf.config.steps);
        assert_eq!(obs, pf.observations());
        let noise = pf.process_noise();
        assert!(noise.iter().all(|v| v.abs() <= 0.5));
    }

    #[test]
    fn metadata() {
        let pf = Pf::default();
        assert_eq!(pf.name(), "PF");
        assert_eq!(pf.target_objects(), vec!["xe"]);
        assert_eq!(pf.output_objects(), vec!["xe"]);
    }
}
