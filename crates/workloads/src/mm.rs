//! Dense matrix multiplication `C = A × B` (paper §VI, Fig. 8).
//!
//! The first ABFT case study measures the aDVF of the result matrix `C`
//! without protection (≈ 0.017 — almost every corrupted element of `C`
//! survives into the output, because `C` is written once and never
//! re-derived) and with the Wu & Ding checksum ABFT (≈ 0.82 — corrupted
//! elements are corrected during the verification phase, which the model
//! attributes to value overwriting during error propagation).
//!
//! This module provides the unprotected kernel; `moard-abft` builds the
//! checksum-protected variant on top of the same structure.

use crate::linalg::{matmul_ref, random_matrix};
use crate::spec::{Acceptance, Workload};
use moard_ir::prelude::*;
use moard_ir::verify::assert_verified;

/// Problem configuration for the matrix-multiply kernel.
#[derive(Debug, Clone, Copy)]
pub struct MmConfig {
    /// Matrix dimension (square).
    pub n: usize,
    /// RNG seed for A and B.
    pub seed: u64,
}

impl Default for MmConfig {
    fn default() -> Self {
        MmConfig {
            n: 8,
            seed: 0x5E_ED33,
        }
    }
}

/// The unprotected matrix-multiplication workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct MatMul {
    /// Problem configuration.
    pub config: MmConfig,
}

impl MatMul {
    /// Matrix multiply with an explicit configuration.
    pub fn with_config(config: MmConfig) -> Self {
        MatMul { config }
    }

    /// Input matrix A (row-major).
    pub fn a(&self) -> Vec<f64> {
        random_matrix(self.config.n, self.config.n, self.config.seed)
    }

    /// Input matrix B (row-major).
    pub fn b(&self) -> Vec<f64> {
        random_matrix(self.config.n, self.config.n, self.config.seed ^ 0xbb)
    }

    /// Reference product.
    pub fn expected(&self) -> Vec<f64> {
        matmul_ref(&self.a(), &self.b(), self.config.n)
    }
}

impl Workload for MatMul {
    fn name(&self) -> &'static str {
        "MM"
    }

    fn description(&self) -> &'static str {
        "Dense matrix multiplication C = A x B (ABFT case-study baseline)"
    }

    fn code_segment(&self) -> &'static str {
        "matmul"
    }

    fn target_objects(&self) -> Vec<&'static str> {
        vec!["C"]
    }

    fn output_objects(&self) -> Vec<&'static str> {
        vec!["C"]
    }

    fn acceptance(&self) -> Acceptance {
        // Matrix multiplication demands numerical integrity: any deviation of
        // the product is an unacceptable outcome (paper §II-A's "precise
        // numerical integrity" notion).
        Acceptance::Exact
    }

    fn build(&self) -> Module {
        let n = self.config.n as i64;
        let mut m = Module::new("mm");
        let a = m.add_global(Global::from_f64("A", &self.a()));
        let b = m.add_global(Global::from_f64("B", &self.b()));
        let c = m.add_global(Global::zeroed(
            "C",
            Type::F64,
            (self.config.n * self.config.n) as u64,
        ));

        let mut f = FunctionBuilder::new("main", &[], Some(Type::F64));
        // C = 0, then the canonical accumulate-in-place triple loop
        // C[i][j] += A[i][k] * B[k][j]: every partial sum lives in C itself,
        // which is exactly why an error in C is almost never masked without
        // ABFT (paper Fig. 8: aDVF(C) ≈ 0.017).
        f.for_loop(Operand::const_i64(0), Operand::const_i64(n * n), |f, e| {
            f.store_elem(Type::F64, c, Operand::Reg(e), Operand::const_f64(0.0));
        });
        f.for_loop(Operand::const_i64(0), Operand::const_i64(n), |f, i| {
            f.for_loop(Operand::const_i64(0), Operand::const_i64(n), |f, k| {
                let aik = f.lin2(Operand::Reg(i), Operand::Reg(k), n);
                let av = f.load_elem(Type::F64, a, Operand::Reg(aik));
                f.for_loop(Operand::const_i64(0), Operand::const_i64(n), |f, j| {
                    let bkj = f.lin2(Operand::Reg(k), Operand::Reg(j), n);
                    let bv = f.load_elem(Type::F64, b, Operand::Reg(bkj));
                    let p = f.fmul(Operand::Reg(av), Operand::Reg(bv));
                    let cij = f.lin2(Operand::Reg(i), Operand::Reg(j), n);
                    let cv = f.load_elem(Type::F64, c, Operand::Reg(cij));
                    let s = f.fadd(Operand::Reg(cv), Operand::Reg(p));
                    f.store_elem(Type::F64, c, Operand::Reg(cij), Operand::Reg(s));
                });
            });
        });
        // Return the trace of C as a scalar summary.
        let tr = f.alloc_reg(Type::F64);
        f.mov(tr, Operand::const_f64(0.0));
        f.for_loop(Operand::const_i64(0), Operand::const_i64(n), |f, i| {
            let cii = f.lin2(Operand::Reg(i), Operand::Reg(i), n);
            let v = f.load_elem(Type::F64, c, Operand::Reg(cii));
            let s = f.fadd(Operand::Reg(tr), Operand::Reg(v));
            f.mov(tr, Operand::Reg(s));
        });
        f.ret(Some(Operand::Reg(tr)));

        m.add_function(f.finish());
        assert_verified(&m);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::golden_run;

    #[test]
    fn product_matches_reference() {
        let mm = MatMul::default();
        let outcome = golden_run(&mm).unwrap();
        assert!(outcome.status.is_completed());
        let got = outcome.global_f64("C");
        let want = mm.expected();
        assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(want.iter()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        let trace: f64 = (0..mm.config.n).map(|i| want[i * mm.config.n + i]).sum();
        assert!((outcome.return_f64() - trace).abs() < 1e-12);
    }

    #[test]
    fn metadata() {
        let mm = MatMul::default();
        assert_eq!(mm.name(), "MM");
        assert_eq!(mm.target_objects(), vec!["C"]);
        assert_eq!(mm.acceptance(), Acceptance::Exact);
    }
}
