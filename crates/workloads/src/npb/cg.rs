//! NPB CG — Conjugate Gradient with irregular memory access (Table I).
//!
//! The paper studies the routine `conj_grad` in the main loop, with target
//! data objects `r` (the double-precision residual vector) and `colidx` (the
//! integer column-index array of the CSR matrix).  For the model-validation
//! experiment (Fig. 6) the remaining major data objects of `conj_grad`
//! (`rowstr`, `a`, `p`, `q`) are also registered.
//!
//! The kernel is a faithful, reduced-scale conjugate-gradient iteration on a
//! randomly generated, diagonally dominant sparse matrix: the same
//! sparse-matrix-vector products through `colidx`/`rowstr` indirection, the
//! same vector updates on `r`, `p`, `z`, `q`, and the same residual-norm
//! reduction — the operation mix that determines each object's aDVF.

use crate::linalg::CsrMatrix;
use crate::spec::{Acceptance, Workload};
use moard_ir::prelude::*;
use moard_ir::verify::assert_verified;

/// Problem configuration for the CG kernel.
#[derive(Debug, Clone, Copy)]
pub struct CgConfig {
    /// Matrix dimension.
    pub n: usize,
    /// Extra off-diagonal non-zeros per row.
    pub extra_per_row: usize,
    /// Number of CG iterations.
    pub iterations: usize,
    /// RNG seed for the matrix and right-hand side.
    pub seed: u64,
}

impl Default for CgConfig {
    fn default() -> Self {
        CgConfig {
            n: 24,
            extra_per_row: 4,
            iterations: 8,
            seed: 0x5E_EDC6,
        }
    }
}

/// The CG workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cg {
    /// Problem configuration.
    pub config: CgConfig,
}

impl Cg {
    /// CG with an explicit configuration.
    pub fn with_config(config: CgConfig) -> Self {
        Cg { config }
    }

    /// The generated input matrix (used by tests and the validation bench).
    pub fn matrix(&self) -> CsrMatrix {
        CsrMatrix::diagonally_dominant(self.config.n, self.config.extra_per_row, self.config.seed)
    }
}

impl Workload for Cg {
    fn name(&self) -> &'static str {
        "CG"
    }

    fn description(&self) -> &'static str {
        "Conjugate Gradient, irregular memory access (reduced class S)"
    }

    fn code_segment(&self) -> &'static str {
        "conj_grad"
    }

    fn target_objects(&self) -> Vec<&'static str> {
        vec!["r", "colidx"]
    }

    fn output_objects(&self) -> Vec<&'static str> {
        vec!["z", "rnorm"]
    }

    fn acceptance(&self) -> Acceptance {
        // CG is an iterative solver: outcomes within a small relative error
        // of the golden solution are acceptable (paper §II-A: "satisfying a
        // minimum fidelity threshold").
        Acceptance::MaxRelDiff(1e-4)
    }

    fn build(&self) -> Module {
        let cfg = self.config;
        let n = cfg.n as i64;
        let mat = self.matrix();
        let rhs = crate::linalg::random_vector(cfg.n, 0.5, 1.5, cfg.seed ^ 0xb);

        let mut m = Module::new("cg");
        let a = m.add_global(Global::from_f64("a", &mat.a));
        let colidx = m.add_global(Global::from_i64("colidx", &mat.colidx));
        let rowstr = m.add_global(Global::from_i64("rowstr", &mat.rowstr));
        let x = m.add_global(Global::from_f64("x", &rhs));
        let z = m.add_global(Global::zeroed("z", Type::F64, cfg.n as u64));
        let p = m.add_global(Global::zeroed("p", Type::F64, cfg.n as u64));
        let q = m.add_global(Global::zeroed("q", Type::F64, cfg.n as u64));
        let r = m.add_global(Global::zeroed("r", Type::F64, cfg.n as u64));
        let rnorm = m.add_global(Global::zeroed("rnorm", Type::F64, 1));

        let mut f = FunctionBuilder::new("main", &[], Some(Type::F64));

        // Initialization: q = z = 0, r = p = x.
        f.for_loop(Operand::const_i64(0), Operand::const_i64(n), |f, j| {
            f.store_elem(Type::F64, q, Operand::Reg(j), Operand::const_f64(0.0));
            f.store_elem(Type::F64, z, Operand::Reg(j), Operand::const_f64(0.0));
            let xj = f.load_elem(Type::F64, x, Operand::Reg(j));
            f.store_elem(Type::F64, r, Operand::Reg(j), Operand::Reg(xj));
            f.store_elem(Type::F64, p, Operand::Reg(j), Operand::Reg(xj));
        });

        // rho = r . r
        let rho = f.alloc_reg(Type::F64);
        f.mov(rho, Operand::const_f64(0.0));
        f.for_loop(Operand::const_i64(0), Operand::const_i64(n), |f, j| {
            let rj = f.load_elem(Type::F64, r, Operand::Reg(j));
            let sq = f.fmul(Operand::Reg(rj), Operand::Reg(rj));
            let s = f.fadd(Operand::Reg(rho), Operand::Reg(sq));
            f.mov(rho, Operand::Reg(s));
        });

        // Main CG iteration.
        f.for_loop(
            Operand::const_i64(0),
            Operand::const_i64(cfg.iterations as i64),
            |f, _it| {
                // q = A * p  (CSR matvec through rowstr/colidx indirection).
                f.for_loop(Operand::const_i64(0), Operand::const_i64(n), |f, j| {
                    let sum = f.alloc_reg(Type::F64);
                    f.mov(sum, Operand::const_f64(0.0));
                    let start = f.load_elem(Type::I64, rowstr, Operand::Reg(j));
                    let j1 = f.add(Operand::Reg(j), Operand::const_i64(1));
                    let end = f.load_elem(Type::I64, rowstr, Operand::Reg(j1));
                    f.for_loop(Operand::Reg(start), Operand::Reg(end), |f, k| {
                        let col = f.load_elem(Type::I64, colidx, Operand::Reg(k));
                        let av = f.load_elem(Type::F64, a, Operand::Reg(k));
                        let pv = f.load_elem(Type::F64, p, Operand::Reg(col));
                        let prod = f.fmul(Operand::Reg(av), Operand::Reg(pv));
                        let s = f.fadd(Operand::Reg(sum), Operand::Reg(prod));
                        f.mov(sum, Operand::Reg(s));
                    });
                    f.store_elem(Type::F64, q, Operand::Reg(j), Operand::Reg(sum));
                });

                // d = p . q ; alpha = rho / d
                let d = f.alloc_reg(Type::F64);
                f.mov(d, Operand::const_f64(0.0));
                f.for_loop(Operand::const_i64(0), Operand::const_i64(n), |f, j| {
                    let pj = f.load_elem(Type::F64, p, Operand::Reg(j));
                    let qj = f.load_elem(Type::F64, q, Operand::Reg(j));
                    let prod = f.fmul(Operand::Reg(pj), Operand::Reg(qj));
                    let s = f.fadd(Operand::Reg(d), Operand::Reg(prod));
                    f.mov(d, Operand::Reg(s));
                });
                let alpha = f.fdiv(Operand::Reg(rho), Operand::Reg(d));

                // z += alpha p ; r -= alpha q
                f.for_loop(Operand::const_i64(0), Operand::const_i64(n), |f, j| {
                    let pj = f.load_elem(Type::F64, p, Operand::Reg(j));
                    let zj = f.load_elem(Type::F64, z, Operand::Reg(j));
                    let ap = f.fmul(Operand::Reg(alpha), Operand::Reg(pj));
                    let nz = f.fadd(Operand::Reg(zj), Operand::Reg(ap));
                    f.store_elem(Type::F64, z, Operand::Reg(j), Operand::Reg(nz));
                    let qj = f.load_elem(Type::F64, q, Operand::Reg(j));
                    let rj = f.load_elem(Type::F64, r, Operand::Reg(j));
                    let aq = f.fmul(Operand::Reg(alpha), Operand::Reg(qj));
                    let nr = f.fsub(Operand::Reg(rj), Operand::Reg(aq));
                    f.store_elem(Type::F64, r, Operand::Reg(j), Operand::Reg(nr));
                });

                // rho0 = rho ; rho = r . r ; beta = rho / rho0
                let rho0 = f.alloc_reg(Type::F64);
                f.mov(rho0, Operand::Reg(rho));
                f.mov(rho, Operand::const_f64(0.0));
                f.for_loop(Operand::const_i64(0), Operand::const_i64(n), |f, j| {
                    let rj = f.load_elem(Type::F64, r, Operand::Reg(j));
                    let sq = f.fmul(Operand::Reg(rj), Operand::Reg(rj));
                    let s = f.fadd(Operand::Reg(rho), Operand::Reg(sq));
                    f.mov(rho, Operand::Reg(s));
                });
                let beta = f.fdiv(Operand::Reg(rho), Operand::Reg(rho0));

                // p = r + beta p
                f.for_loop(Operand::const_i64(0), Operand::const_i64(n), |f, j| {
                    let rj = f.load_elem(Type::F64, r, Operand::Reg(j));
                    let pj = f.load_elem(Type::F64, p, Operand::Reg(j));
                    let bp = f.fmul(Operand::Reg(beta), Operand::Reg(pj));
                    let np = f.fadd(Operand::Reg(rj), Operand::Reg(bp));
                    f.store_elem(Type::F64, p, Operand::Reg(j), Operand::Reg(np));
                });
            },
        );

        // rnorm = sqrt(rho)
        let rn = f.sqrt(Operand::Reg(rho));
        f.store_elem(Type::F64, rnorm, Operand::const_i64(0), Operand::Reg(rn));
        f.ret(Some(Operand::Reg(rn)));

        m.add_function(f.finish());
        assert_verified(&m);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::golden_run;

    fn reference_cg(cfg: CgConfig) -> (Vec<f64>, f64) {
        let cg = Cg::with_config(cfg);
        let mat = cg.matrix();
        let b = crate::linalg::random_vector(cfg.n, 0.5, 1.5, cfg.seed ^ 0xb);
        let mut z = vec![0.0; cfg.n];
        let mut r = b.clone();
        let mut p = b.clone();
        let mut rho: f64 = crate::linalg::dot(&r, &r);
        for _ in 0..cfg.iterations {
            let q = mat.matvec(&p);
            let alpha = rho / crate::linalg::dot(&p, &q);
            for j in 0..cfg.n {
                z[j] += alpha * p[j];
                r[j] -= alpha * q[j];
            }
            let rho0 = rho;
            rho = crate::linalg::dot(&r, &r);
            let beta = rho / rho0;
            for j in 0..cfg.n {
                p[j] = r[j] + beta * p[j];
            }
        }
        (z, rho.sqrt())
    }

    #[test]
    fn golden_run_matches_reference_implementation() {
        let cg = Cg::default();
        let outcome = golden_run(&cg).unwrap();
        assert!(outcome.status.is_completed());
        let (z_ref, rnorm_ref) = reference_cg(cg.config);
        let z = outcome.global_f64("z");
        assert_eq!(z.len(), cg.config.n);
        for (a, b) in z.iter().zip(z_ref.iter()) {
            assert!((a - b).abs() < 1e-9, "z mismatch: {a} vs {b}");
        }
        assert!((outcome.return_f64() - rnorm_ref).abs() < 1e-9);
    }

    #[test]
    fn cg_converges() {
        let cg = Cg::default();
        let outcome = golden_run(&cg).unwrap();
        let b = crate::linalg::random_vector(cg.config.n, 0.5, 1.5, cg.config.seed ^ 0xb);
        let initial_norm = crate::linalg::norm2(&b);
        assert!(
            outcome.return_f64() < 1e-2 * initial_norm,
            "CG did not converge: rnorm {} vs initial {}",
            outcome.return_f64(),
            initial_norm
        );
    }

    #[test]
    fn table1_metadata() {
        let cg = Cg::default();
        assert_eq!(cg.name(), "CG");
        assert_eq!(cg.code_segment(), "conj_grad");
        assert_eq!(cg.target_objects(), vec!["r", "colidx"]);
        // Fig. 6 objects exist as globals.
        let module = cg.build();
        for obj in ["rowstr", "colidx", "a", "p", "q", "r"] {
            assert!(module.global_id(obj).is_some(), "missing global {obj}");
        }
    }
}
