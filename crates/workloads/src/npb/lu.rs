//! NPB LU — Lower-Upper Gauss-Seidel solver (Table I).
//!
//! The paper evaluates the routine `ssor` with target data objects `u` (the
//! solution array) and `rsd` (the steady-state residual array).  The paper's
//! worked aDVF example (Listing 2, Equation 2) is the `l2norm` routine inside
//! `ssor`, which this module reproduces statement-for-statement: the first
//! loop zeroes `sum[m]`, the second accumulates `sum[m] += v*v` over the 3-D
//! grid, and the third takes `sqrt(sum[m]/cells)`.
//!
//! The surrounding SSOR sweep is a reduced-scale relaxation: each step
//! recomputes `rsd` from `u` and the right-hand side and applies an
//! under-relaxed update to `u`, which is the operation mix (load-compute-
//! store, accumulation, overwriting) that drives `u`'s and `rsd`'s aDVF.

use crate::linalg::random_vector;
use crate::spec::{Acceptance, Workload};
use moard_ir::prelude::*;
use moard_ir::verify::assert_verified;

/// Problem configuration for the LU/SSOR kernel.
#[derive(Debug, Clone, Copy)]
pub struct LuConfig {
    /// Grid points per dimension (the grid is `nx^3` with 5 components per
    /// point, like the NPB `v[..][..][..][5]` arrays).
    pub nx: usize,
    /// Number of SSOR sweeps.
    pub sweeps: usize,
    /// Under-relaxation factor.
    pub omega: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LuConfig {
    fn default() -> Self {
        LuConfig {
            nx: 4,
            sweeps: 3,
            omega: 0.8,
            seed: 0x5E_ED14,
        }
    }
}

/// The LU workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lu {
    /// Problem configuration.
    pub config: LuConfig,
}

impl Lu {
    /// LU with an explicit configuration.
    pub fn with_config(config: LuConfig) -> Self {
        Lu { config }
    }

    fn cells(&self) -> usize {
        self.config.nx * self.config.nx * self.config.nx
    }
}

impl Workload for Lu {
    fn name(&self) -> &'static str {
        "LU"
    }

    fn description(&self) -> &'static str {
        "Lower-Upper Gauss-Seidel solver (reduced class S)"
    }

    fn code_segment(&self) -> &'static str {
        "ssor"
    }

    fn target_objects(&self) -> Vec<&'static str> {
        vec!["u", "rsd"]
    }

    fn output_objects(&self) -> Vec<&'static str> {
        vec!["u", "sum"]
    }

    fn acceptance(&self) -> Acceptance {
        Acceptance::MaxRelDiff(1e-4)
    }

    fn build(&self) -> Module {
        let cfg = self.config;
        let nx = cfg.nx as i64;
        let ncell = self.cells();
        let nelem = ncell * 5;

        let mut m = Module::new("lu");
        let u_init = random_vector(nelem, 0.0, 1.0, cfg.seed);
        let frct_init = random_vector(nelem, 0.0, 1.0, cfg.seed ^ 0x7);
        let u = m.add_global(Global::from_f64("u", &u_init));
        let rsd = m.add_global(Global::zeroed("rsd", Type::F64, nelem as u64));
        let frct = m.add_global(Global::from_f64("frct", &frct_init));
        let sum = m.add_global(Global::zeroed("sum", Type::F64, 5));

        // l2norm(v, sum): the paper's Listing 2, on a flattened
        // v[nz][ny][nx][5] array.
        let mut l2 = FunctionBuilder::new("l2norm", &[Type::Ptr], None);
        let vbase = l2.param(0);
        // First loop: sum[m] = 0.0                       (Statement A)
        l2.for_loop(Operand::const_i64(0), Operand::const_i64(5), |f, mm| {
            f.store_elem(Type::F64, sum, Operand::Reg(mm), Operand::const_f64(0.0));
        });
        // Second loop nest: sum[m] += v[k][j][i][m]^2    (Statement B)
        l2.for_loop(Operand::const_i64(0), Operand::const_i64(nx), |f, k| {
            f.for_loop(Operand::const_i64(0), Operand::const_i64(nx), |f, j| {
                f.for_loop(Operand::const_i64(0), Operand::const_i64(nx), |f, i| {
                    f.for_loop(Operand::const_i64(0), Operand::const_i64(5), |f, mm| {
                        let idx = f.lin4(
                            Operand::Reg(k),
                            Operand::Reg(j),
                            Operand::Reg(i),
                            Operand::Reg(mm),
                            nx,
                            nx,
                            5,
                        );
                        let addr = f.elem_addr(Type::F64, Operand::Reg(vbase), Operand::Reg(idx));
                        let v = f.load(Type::F64, Operand::Reg(addr));
                        let sq = f.fmul(Operand::Reg(v), Operand::Reg(v));
                        let s = f.load_elem(Type::F64, sum, Operand::Reg(mm));
                        let ns = f.fadd(Operand::Reg(s), Operand::Reg(sq));
                        f.store_elem(Type::F64, sum, Operand::Reg(mm), Operand::Reg(ns));
                    });
                });
            });
        });
        // Third loop: sum[m] = sqrt(sum[m] / cells)      (Statement C)
        let cells_f = ncell as f64;
        l2.for_loop(Operand::const_i64(0), Operand::const_i64(5), |f, mm| {
            let s = f.load_elem(Type::F64, sum, Operand::Reg(mm));
            let scaled = f.fdiv(Operand::Reg(s), Operand::const_f64(cells_f));
            let root = f.sqrt(Operand::Reg(scaled));
            f.store_elem(Type::F64, sum, Operand::Reg(mm), Operand::Reg(root));
        });
        l2.ret(None);
        let l2_id = m.add_function(l2.finish());

        // ssor: sweeps of rsd = frct - 0.2*(u + neighbor averages);
        //       u += omega * rsd; then l2norm(rsd, sum).
        let mut f = FunctionBuilder::new("main", &[], Some(Type::F64));
        f.for_loop(
            Operand::const_i64(0),
            Operand::const_i64(cfg.sweeps as i64),
            |f, _sweep| {
                // Residual computation (Jacobi-style stencil on the flattened
                // grid; neighbor in the i direction only, boundaries clamped).
                f.for_loop(Operand::const_i64(0), Operand::const_i64(nx), |f, k| {
                    f.for_loop(Operand::const_i64(0), Operand::const_i64(nx), |f, j| {
                        f.for_loop(Operand::const_i64(0), Operand::const_i64(nx), |f, i| {
                            f.for_loop(Operand::const_i64(0), Operand::const_i64(5), |f, mm| {
                                let idx = f.lin4(
                                    Operand::Reg(k),
                                    Operand::Reg(j),
                                    Operand::Reg(i),
                                    Operand::Reg(mm),
                                    nx,
                                    nx,
                                    5,
                                );
                                let uv = f.load_elem(Type::F64, u, Operand::Reg(idx));
                                let fv = f.load_elem(Type::F64, frct, Operand::Reg(idx));
                                // Left neighbor (clamped at the boundary).
                                let im1 = f.sub(Operand::Reg(i), Operand::const_i64(1));
                                let is_left =
                                    f.cmp(CmpPred::Slt, Operand::Reg(im1), Operand::const_i64(0));
                                let i_nb = f.select(
                                    Type::I64,
                                    Operand::Reg(is_left),
                                    Operand::Reg(i),
                                    Operand::Reg(im1),
                                );
                                let idx_nb = f.lin4(
                                    Operand::Reg(k),
                                    Operand::Reg(j),
                                    Operand::Reg(i_nb),
                                    Operand::Reg(mm),
                                    nx,
                                    nx,
                                    5,
                                );
                                let unb = f.load_elem(Type::F64, u, Operand::Reg(idx_nb));
                                let avg = f.fadd(Operand::Reg(uv), Operand::Reg(unb));
                                let scaled = f.fmul(Operand::Reg(avg), Operand::const_f64(0.2));
                                let res = f.fsub(Operand::Reg(fv), Operand::Reg(scaled));
                                f.store_elem(Type::F64, rsd, Operand::Reg(idx), Operand::Reg(res));
                            });
                        });
                    });
                });
                // u += omega * rsd
                f.for_loop(
                    Operand::const_i64(0),
                    Operand::const_i64(nelem as i64),
                    |f, e| {
                        let rv = f.load_elem(Type::F64, rsd, Operand::Reg(e));
                        let uv = f.load_elem(Type::F64, u, Operand::Reg(e));
                        let upd = f.fmul(Operand::Reg(rv), Operand::const_f64(cfg.omega));
                        let nu = f.fadd(Operand::Reg(uv), Operand::Reg(upd));
                        f.store_elem(Type::F64, u, Operand::Reg(e), Operand::Reg(nu));
                    },
                );
            },
        );
        // Final residual norm of rsd (the paper's l2norm call).
        f.call(l2_id, &[Operand::Global(rsd)], None);
        let s0 = f.load_elem(Type::F64, sum, Operand::const_i64(0));
        f.ret(Some(Operand::Reg(s0)));

        m.add_function(f.finish());
        assert_verified(&m);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::golden_run;

    fn reference(cfg: LuConfig) -> (Vec<f64>, Vec<f64>) {
        let nx = cfg.nx;
        let ncell = nx * nx * nx;
        let nelem = ncell * 5;
        let mut u = random_vector(nelem, 0.0, 1.0, cfg.seed);
        let frct = random_vector(nelem, 0.0, 1.0, cfg.seed ^ 0x7);
        let mut rsd = vec![0.0; nelem];
        let idx = |k: usize, j: usize, i: usize, m: usize| ((k * nx + j) * nx + i) * 5 + m;
        for _ in 0..cfg.sweeps {
            for k in 0..nx {
                for j in 0..nx {
                    for i in 0..nx {
                        for m in 0..5 {
                            let i_nb = if i == 0 { i } else { i - 1 };
                            let avg = u[idx(k, j, i, m)] + u[idx(k, j, i_nb, m)];
                            rsd[idx(k, j, i, m)] = frct[idx(k, j, i, m)] - 0.2 * avg;
                        }
                    }
                }
            }
            for e in 0..nelem {
                u[e] += cfg.omega * rsd[e];
            }
        }
        let mut sum = vec![0.0; 5];
        for k in 0..nx {
            for j in 0..nx {
                for i in 0..nx {
                    for m in 0..5 {
                        let v = rsd[idx(k, j, i, m)];
                        sum[m] += v * v;
                    }
                }
            }
        }
        for s in sum.iter_mut() {
            *s = (*s / ncell as f64).sqrt();
        }
        (u, sum)
    }

    #[test]
    fn golden_run_matches_reference() {
        let lu = Lu::default();
        let outcome = golden_run(&lu).unwrap();
        assert!(outcome.status.is_completed());
        let (u_ref, sum_ref) = reference(lu.config);
        let u = outcome.global_f64("u");
        let sum = outcome.global_f64("sum");
        assert_eq!(u.len(), u_ref.len());
        for (a, b) in u.iter().zip(u_ref.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
        for (a, b) in sum.iter().zip(sum_ref.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
        assert!((outcome.return_f64() - sum_ref[0]).abs() < 1e-9);
    }

    #[test]
    fn table1_metadata() {
        let lu = Lu::default();
        assert_eq!(lu.name(), "LU");
        assert_eq!(lu.code_segment(), "ssor");
        assert_eq!(lu.target_objects(), vec!["u", "rsd"]);
        let module = lu.build();
        assert!(module.global_id("sum").is_some());
        assert!(module.function_id("l2norm").is_some());
    }
}
