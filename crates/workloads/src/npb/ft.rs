//! NPB FT — Discrete 3-D Fast Fourier Transform (Table I).
//!
//! The paper studies the routine `fftXYZ` with target data objects `plane`
//! (the working buffer of complex samples for the line FFTs) and `exp1` (the
//! precomputed twiddle/roll factors).  Both are double-precision and show
//! aDVF close to 1, dominated by overwriting and overshadowing, plus a large
//! algorithm-level contribution for `plane` ("frequent transpose and 1D FFT
//! computations that average out the data corruption").
//!
//! The kernel is a reduced-scale batch of radix-2 line FFTs over the rows and
//! columns of a small 2-D complex grid (the `fftXYZ` structure: FFT along one
//! dimension, transpose, FFT along the next), followed by the NPB-style
//! checksum reduction that defines the application outcome.

use crate::spec::{Acceptance, Workload};
use moard_ir::prelude::*;
use moard_ir::verify::assert_verified;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Problem configuration for the FT kernel.
#[derive(Debug, Clone, Copy)]
pub struct FtConfig {
    /// Grid dimension (rows == cols == n, power of two).
    pub n: usize,
    /// RNG seed for the initial complex field.
    pub seed: u64,
}

impl Default for FtConfig {
    fn default() -> Self {
        FtConfig {
            n: 8,
            seed: 0x5E_EDF7,
        }
    }
}

/// The FT workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ft {
    /// Problem configuration.
    pub config: FtConfig,
}

impl Ft {
    /// FT with an explicit configuration.
    pub fn with_config(config: FtConfig) -> Self {
        Ft { config }
    }

    /// Initial complex field (interleaved re/im), deterministic.
    pub fn initial_field(&self) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        (0..self.config.n * self.config.n * 2)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect()
    }

    /// Twiddle factors for an n-point radix-2 FFT: exp(-2πi k / n) for
    /// k in 0..n/2, interleaved re/im.
    pub fn twiddles(&self) -> Vec<f64> {
        let n = self.config.n;
        let mut out = Vec::with_capacity(n);
        for k in 0..n / 2 {
            let angle = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
            out.push(angle.cos());
            out.push(angle.sin());
        }
        out
    }
}

impl Workload for Ft {
    fn name(&self) -> &'static str {
        "FT"
    }

    fn description(&self) -> &'static str {
        "Discrete 3D fast Fourier Transform (reduced class S, 2-D grid)"
    }

    fn code_segment(&self) -> &'static str {
        "fftXYZ"
    }

    fn target_objects(&self) -> Vec<&'static str> {
        vec!["plane", "exp1"]
    }

    fn output_objects(&self) -> Vec<&'static str> {
        vec!["chk"]
    }

    fn acceptance(&self) -> Acceptance {
        // The NPB FT verification compares checksums to a few digits; small
        // perturbations of the spectrum are acceptable.
        Acceptance::MaxRelDiff(1e-3)
    }

    fn build(&self) -> Module {
        let cfg = self.config;
        let n = cfg.n as i64;
        let half = n / 2;

        let mut m = Module::new("ft");
        let plane = m.add_global(Global::from_f64("plane", &self.initial_field()));
        let exp1 = m.add_global(Global::from_f64("exp1", &self.twiddles()));
        let scratch = m.add_global(Global::zeroed("scratch", Type::F64, (cfg.n * 2) as u64));
        let chk = m.add_global(Global::zeroed("chk", Type::F64, 2));

        // fft_line(base_offset, stride): in-place n-point radix-2 DIT FFT of
        // the complex line starting at element `base_offset` of `plane` with
        // the given complex-element stride (1 for rows, n for columns).
        // Implemented iteratively: bit-reversal copy into `scratch`, then
        // butterfly stages reading twiddles from `exp1`.
        let mut lf = FunctionBuilder::new("fft_line", &[Type::I64, Type::I64], None);
        {
            let base = lf.param(0);
            let stride = lf.param(1);
            let bits = (cfg.n as f64).log2() as i64;
            // Bit-reversal permutation into scratch (interleaved re/im).
            lf.for_loop(Operand::const_i64(0), Operand::const_i64(n), |f, i| {
                // rev = bit-reverse of i over `bits` bits.
                let rev = f.alloc_reg(Type::I64);
                f.mov(rev, Operand::const_i64(0));
                for b in 0..bits {
                    let bit = f.lshr(Operand::Reg(i), Operand::const_i64(b));
                    let bit = f.and(Operand::Reg(bit), Operand::const_i64(1));
                    let shifted = f.shl(Operand::Reg(bit), Operand::const_i64(bits - 1 - b));
                    let nr = f.or(Operand::Reg(rev), Operand::Reg(shifted));
                    f.mov(rev, Operand::Reg(nr));
                }
                // scratch[2i..] = plane[(base + rev*stride)*2 ..]
                let src_elem = f.mul(Operand::Reg(rev), Operand::Reg(stride));
                let src_elem = f.add(Operand::Reg(src_elem), Operand::Reg(base));
                let src_re = f.mul(Operand::Reg(src_elem), Operand::const_i64(2));
                let src_im = f.add(Operand::Reg(src_re), Operand::const_i64(1));
                let re = f.load_elem(Type::F64, plane, Operand::Reg(src_re));
                let im = f.load_elem(Type::F64, plane, Operand::Reg(src_im));
                let dst_re = f.mul(Operand::Reg(i), Operand::const_i64(2));
                let dst_im = f.add(Operand::Reg(dst_re), Operand::const_i64(1));
                f.store_elem(Type::F64, scratch, Operand::Reg(dst_re), Operand::Reg(re));
                f.store_elem(Type::F64, scratch, Operand::Reg(dst_im), Operand::Reg(im));
            });
            // Butterfly stages.
            let mut len = 2i64;
            while len <= n {
                let twiddle_step = n / len;
                lf.for_loop_step(
                    Operand::const_i64(0),
                    Operand::const_i64(n),
                    len,
                    |f, start| {
                        f.for_loop(
                            Operand::const_i64(0),
                            Operand::const_i64(len / 2),
                            |f, k| {
                                // w = exp1[k * twiddle_step]
                                let widx = f.mul(Operand::Reg(k), Operand::const_i64(twiddle_step));
                                let wre_i = f.mul(Operand::Reg(widx), Operand::const_i64(2));
                                let wim_i = f.add(Operand::Reg(wre_i), Operand::const_i64(1));
                                let wre = f.load_elem(Type::F64, exp1, Operand::Reg(wre_i));
                                let wim = f.load_elem(Type::F64, exp1, Operand::Reg(wim_i));
                                // a = scratch[start + k], b = scratch[start + k + len/2]
                                let ai = f.add(Operand::Reg(start), Operand::Reg(k));
                                let bi = f.add(Operand::Reg(ai), Operand::const_i64(len / 2));
                                let are_i = f.mul(Operand::Reg(ai), Operand::const_i64(2));
                                let aim_i = f.add(Operand::Reg(are_i), Operand::const_i64(1));
                                let bre_i = f.mul(Operand::Reg(bi), Operand::const_i64(2));
                                let bim_i = f.add(Operand::Reg(bre_i), Operand::const_i64(1));
                                let are = f.load_elem(Type::F64, scratch, Operand::Reg(are_i));
                                let aim = f.load_elem(Type::F64, scratch, Operand::Reg(aim_i));
                                let bre = f.load_elem(Type::F64, scratch, Operand::Reg(bre_i));
                                let bim = f.load_elem(Type::F64, scratch, Operand::Reg(bim_i));
                                // t = w * b  (complex multiply)
                                let t1 = f.fmul(Operand::Reg(wre), Operand::Reg(bre));
                                let t2 = f.fmul(Operand::Reg(wim), Operand::Reg(bim));
                                let tre = f.fsub(Operand::Reg(t1), Operand::Reg(t2));
                                let t3 = f.fmul(Operand::Reg(wre), Operand::Reg(bim));
                                let t4 = f.fmul(Operand::Reg(wim), Operand::Reg(bre));
                                let tim = f.fadd(Operand::Reg(t3), Operand::Reg(t4));
                                // scratch[a] = a + t ; scratch[b] = a - t
                                let nre = f.fadd(Operand::Reg(are), Operand::Reg(tre));
                                let nim = f.fadd(Operand::Reg(aim), Operand::Reg(tim));
                                let mre = f.fsub(Operand::Reg(are), Operand::Reg(tre));
                                let mim = f.fsub(Operand::Reg(aim), Operand::Reg(tim));
                                f.store_elem(
                                    Type::F64,
                                    scratch,
                                    Operand::Reg(are_i),
                                    Operand::Reg(nre),
                                );
                                f.store_elem(
                                    Type::F64,
                                    scratch,
                                    Operand::Reg(aim_i),
                                    Operand::Reg(nim),
                                );
                                f.store_elem(
                                    Type::F64,
                                    scratch,
                                    Operand::Reg(bre_i),
                                    Operand::Reg(mre),
                                );
                                f.store_elem(
                                    Type::F64,
                                    scratch,
                                    Operand::Reg(bim_i),
                                    Operand::Reg(mim),
                                );
                            },
                        );
                    },
                );
                len *= 2;
            }
            // Copy back to plane along the line.
            lf.for_loop(Operand::const_i64(0), Operand::const_i64(n), |f, i| {
                let si = f.mul(Operand::Reg(i), Operand::const_i64(2));
                let si1 = f.add(Operand::Reg(si), Operand::const_i64(1));
                let re = f.load_elem(Type::F64, scratch, Operand::Reg(si));
                let im = f.load_elem(Type::F64, scratch, Operand::Reg(si1));
                let dst_elem = f.mul(Operand::Reg(i), Operand::Reg(stride));
                let dst_elem = f.add(Operand::Reg(dst_elem), Operand::Reg(base));
                let dre = f.mul(Operand::Reg(dst_elem), Operand::const_i64(2));
                let dim = f.add(Operand::Reg(dre), Operand::const_i64(1));
                f.store_elem(Type::F64, plane, Operand::Reg(dre), Operand::Reg(re));
                f.store_elem(Type::F64, plane, Operand::Reg(dim), Operand::Reg(im));
            });
            lf.ret(None);
        }
        let fft_line = m.add_function(lf.finish());

        // main: FFT along rows (X), then along columns (Y), then checksum.
        let mut f = FunctionBuilder::new("main", &[], Some(Type::F64));
        // Rows: line i starts at element i*n with stride 1.
        f.for_loop(Operand::const_i64(0), Operand::const_i64(n), |f, row| {
            let base = f.mul(Operand::Reg(row), Operand::const_i64(n));
            f.call(fft_line, &[Operand::Reg(base), Operand::const_i64(1)], None);
        });
        // Columns: line j starts at element j with stride n.
        f.for_loop(Operand::const_i64(0), Operand::const_i64(n), |f, col| {
            f.call(fft_line, &[Operand::Reg(col), Operand::const_i64(n)], None);
        });
        // Checksum: sum of a strided subset of spectrum entries (NPB-style).
        let cre = f.alloc_reg(Type::F64);
        let cim = f.alloc_reg(Type::F64);
        f.mov(cre, Operand::const_f64(0.0));
        f.mov(cim, Operand::const_f64(0.0));
        f.for_loop(Operand::const_i64(0), Operand::const_i64(n * n), |f, e| {
            let keep = f.srem(Operand::Reg(e), Operand::const_i64(half.max(1)));
            let is_kept = f.cmp(CmpPred::Eq, Operand::Reg(keep), Operand::const_i64(0));
            f.if_then(Operand::Reg(is_kept), |f| {
                let re_i = f.mul(Operand::Reg(e), Operand::const_i64(2));
                let im_i = f.add(Operand::Reg(re_i), Operand::const_i64(1));
                let re = f.load_elem(Type::F64, plane, Operand::Reg(re_i));
                let im = f.load_elem(Type::F64, plane, Operand::Reg(im_i));
                let nre = f.fadd(Operand::Reg(cre), Operand::Reg(re));
                let nim = f.fadd(Operand::Reg(cim), Operand::Reg(im));
                f.mov(cre, Operand::Reg(nre));
                f.mov(cim, Operand::Reg(nim));
            });
        });
        f.store_elem(Type::F64, chk, Operand::const_i64(0), Operand::Reg(cre));
        f.store_elem(Type::F64, chk, Operand::const_i64(1), Operand::Reg(cim));
        f.ret(Some(Operand::Reg(cre)));

        m.add_function(f.finish());
        assert_verified(&m);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::golden_run;

    /// Reference 2-D FFT (rows then columns) on interleaved complex data.
    fn reference_fft2d(mut data: Vec<f64>, n: usize) -> Vec<f64> {
        fn fft1d(line: &mut [(f64, f64)]) {
            let n = line.len();
            if n <= 1 {
                return;
            }
            // Bit reversal.
            let bits = n.trailing_zeros();
            for i in 0..n {
                let j = (i as u32).reverse_bits() >> (32 - bits);
                let j = j as usize;
                if j > i {
                    line.swap(i, j);
                }
            }
            let mut len = 2;
            while len <= n {
                let ang = -2.0 * std::f64::consts::PI / len as f64;
                for start in (0..n).step_by(len) {
                    for k in 0..len / 2 {
                        let (wre, wim) = ((ang * k as f64).cos(), (ang * k as f64).sin());
                        let (are, aim) = line[start + k];
                        let (bre, bim) = line[start + k + len / 2];
                        let tre = wre * bre - wim * bim;
                        let tim = wre * bim + wim * bre;
                        line[start + k] = (are + tre, aim + tim);
                        line[start + k + len / 2] = (are - tre, aim - tim);
                    }
                }
                len *= 2;
            }
        }
        let get = |d: &Vec<f64>, e: usize| (d[2 * e], d[2 * e + 1]);
        // Rows.
        for row in 0..n {
            let mut line: Vec<(f64, f64)> = (0..n).map(|i| get(&data, row * n + i)).collect();
            fft1d(&mut line);
            for (i, (re, im)) in line.into_iter().enumerate() {
                data[2 * (row * n + i)] = re;
                data[2 * (row * n + i) + 1] = im;
            }
        }
        // Columns.
        for col in 0..n {
            let mut line: Vec<(f64, f64)> = (0..n).map(|j| get(&data, j * n + col)).collect();
            fft1d(&mut line);
            for (j, (re, im)) in line.into_iter().enumerate() {
                data[2 * (j * n + col)] = re;
                data[2 * (j * n + col) + 1] = im;
            }
        }
        data
    }

    #[test]
    fn golden_fft_matches_reference() {
        let ft = Ft::default();
        let outcome = golden_run(&ft).unwrap();
        assert!(outcome.status.is_completed());
        let n = ft.config.n;
        let reference = reference_fft2d(ft.initial_field(), n);
        let plane = outcome.global_f64("plane");
        assert_eq!(plane.len(), reference.len());
        for (a, b) in plane.iter().zip(reference.iter()) {
            assert!((a - b).abs() < 1e-9, "spectrum mismatch: {a} vs {b}");
        }
        // Checksum matches the reference spectrum reduction.
        let half = n / 2;
        let (mut cre, mut cim) = (0.0, 0.0);
        for e in 0..n * n {
            if e % half == 0 {
                cre += reference[2 * e];
                cim += reference[2 * e + 1];
            }
        }
        let chk = outcome.global_f64("chk");
        assert!((chk[0] - cre).abs() < 1e-9);
        assert!((chk[1] - cim).abs() < 1e-9);
    }

    #[test]
    fn table1_metadata() {
        let ft = Ft::default();
        assert_eq!(ft.name(), "FT");
        assert_eq!(ft.code_segment(), "fftXYZ");
        assert_eq!(ft.target_objects(), vec!["plane", "exp1"]);
        assert_eq!(ft.twiddles().len(), ft.config.n);
    }
}
