//! NPB MG — Multi-Grid on a sequence of meshes (Table I).
//!
//! The paper studies the routine `mg3P` (the multigrid V-cycle) with target
//! data objects `u` (the solution mesh) and `r` (the residual mesh).  The
//! multigrid algorithm is the canonical example of algorithm-level error
//! masking in the resilience literature (Casas et al., cited as \[14\] in the
//! paper): its smoothing and coarse-grid correction steps attenuate error
//! magnitude, so corrupted mesh values are tolerated far beyond what
//! operation-level analysis alone explains.
//!
//! The kernel is a reduced-scale 1-D V-cycle (smooth → restrict → recurse →
//! prolongate → smooth) solving a Poisson problem, preserving the
//! overwrite-heavy residual computation and the accumulation-heavy smoothing
//! that shape `u`'s and `r`'s aDVF.

use crate::linalg::random_vector;
use crate::spec::{Acceptance, Workload};
use moard_ir::prelude::*;
use moard_ir::verify::assert_verified;

/// Problem configuration for the MG kernel.
#[derive(Debug, Clone, Copy)]
pub struct MgConfig {
    /// Fine-grid size (must be a power of two).
    pub n: usize,
    /// Number of V-cycles.
    pub cycles: usize,
    /// Jacobi smoothing steps per level.
    pub smooth_steps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MgConfig {
    fn default() -> Self {
        MgConfig {
            n: 32,
            cycles: 2,
            smooth_steps: 2,
            seed: 0x5E_ED36,
        }
    }
}

/// The MG workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mg {
    /// Problem configuration.
    pub config: MgConfig,
}

impl Mg {
    /// MG with an explicit configuration.
    pub fn with_config(config: MgConfig) -> Self {
        Mg { config }
    }
}

impl Workload for Mg {
    fn name(&self) -> &'static str {
        "MG"
    }

    fn description(&self) -> &'static str {
        "Multi-Grid on a sequence of meshes (reduced class S)"
    }

    fn code_segment(&self) -> &'static str {
        "mg3P"
    }

    fn target_objects(&self) -> Vec<&'static str> {
        vec!["u", "r"]
    }

    fn output_objects(&self) -> Vec<&'static str> {
        vec!["u", "resid_norm"]
    }

    fn acceptance(&self) -> Acceptance {
        Acceptance::MaxRelDiff(1e-3)
    }

    fn build(&self) -> Module {
        let cfg = self.config;
        let n = cfg.n as i64;
        let nc = (cfg.n / 2) as i64; // coarse grid size

        let mut m = Module::new("mg");
        let v_init = random_vector(cfg.n, -1.0, 1.0, cfg.seed); // right-hand side
        let v = m.add_global(Global::from_f64("v", &v_init));
        let u = m.add_global(Global::zeroed("u", Type::F64, cfg.n as u64));
        let r = m.add_global(Global::zeroed("r", Type::F64, cfg.n as u64));
        let rc = m.add_global(Global::zeroed("rc", Type::F64, nc as u64)); // coarse residual
        let uc = m.add_global(Global::zeroed("uc", Type::F64, nc as u64)); // coarse correction
        let resid_norm = m.add_global(Global::zeroed("resid_norm", Type::F64, 1));

        // resid(u, v, r, size): r[i] = v[i] - A u[i] with A the 1-D Laplacian
        // (2u[i] - u[i-1] - u[i+1]), boundaries treated as zero.
        let mut residf =
            FunctionBuilder::new("resid", &[Type::Ptr, Type::Ptr, Type::Ptr, Type::I64], None);
        {
            let ub = residf.param(0);
            let vb = residf.param(1);
            let rb = residf.param(2);
            let size = residf.param(3);
            residf.for_loop(Operand::const_i64(0), Operand::Reg(size), |f, i| {
                let ua = f.elem_addr(Type::F64, Operand::Reg(ub), Operand::Reg(i));
                let ui = f.load(Type::F64, Operand::Reg(ua));
                let two_u = f.fmul(Operand::Reg(ui), Operand::const_f64(2.0));
                // Left neighbor.
                let left = f.alloc_reg(Type::F64);
                f.mov(left, Operand::const_f64(0.0));
                let im1 = f.sub(Operand::Reg(i), Operand::const_i64(1));
                let has_left = f.cmp(CmpPred::Sge, Operand::Reg(im1), Operand::const_i64(0));
                f.if_then(Operand::Reg(has_left), |f| {
                    let la = f.elem_addr(Type::F64, Operand::Reg(ub), Operand::Reg(im1));
                    let lv = f.load(Type::F64, Operand::Reg(la));
                    f.mov(left, Operand::Reg(lv));
                });
                // Right neighbor.
                let right = f.alloc_reg(Type::F64);
                f.mov(right, Operand::const_f64(0.0));
                let ip1 = f.add(Operand::Reg(i), Operand::const_i64(1));
                let has_right = f.cmp(CmpPred::Slt, Operand::Reg(ip1), Operand::Reg(size));
                f.if_then(Operand::Reg(has_right), |f| {
                    let ra = f.elem_addr(Type::F64, Operand::Reg(ub), Operand::Reg(ip1));
                    let rv = f.load(Type::F64, Operand::Reg(ra));
                    f.mov(right, Operand::Reg(rv));
                });
                let nb = f.fadd(Operand::Reg(left), Operand::Reg(right));
                let au = f.fsub(Operand::Reg(two_u), Operand::Reg(nb));
                let va = f.elem_addr(Type::F64, Operand::Reg(vb), Operand::Reg(i));
                let vi = f.load(Type::F64, Operand::Reg(va));
                let res = f.fsub(Operand::Reg(vi), Operand::Reg(au));
                let ra = f.elem_addr(Type::F64, Operand::Reg(rb), Operand::Reg(i));
                f.store(Type::F64, Operand::Reg(res), Operand::Reg(ra));
            });
            residf.ret(None);
        }
        let resid_id = m.add_function(residf.finish());

        // smooth(u, r, size, steps): Jacobi relaxation u[i] += 0.4 * r[i],
        // recomputing r between steps is done by the caller.
        let mut smoothf = FunctionBuilder::new("psinv", &[Type::Ptr, Type::Ptr, Type::I64], None);
        {
            let ub = smoothf.param(0);
            let rb = smoothf.param(1);
            let size = smoothf.param(2);
            smoothf.for_loop(Operand::const_i64(0), Operand::Reg(size), |f, i| {
                let ra = f.elem_addr(Type::F64, Operand::Reg(rb), Operand::Reg(i));
                let ri = f.load(Type::F64, Operand::Reg(ra));
                let ua = f.elem_addr(Type::F64, Operand::Reg(ub), Operand::Reg(i));
                let ui = f.load(Type::F64, Operand::Reg(ua));
                let corr = f.fmul(Operand::Reg(ri), Operand::const_f64(0.4));
                let nu = f.fadd(Operand::Reg(ui), Operand::Reg(corr));
                f.store(Type::F64, Operand::Reg(nu), Operand::Reg(ua));
            });
            smoothf.ret(None);
        }
        let smooth_id = m.add_function(smoothf.finish());

        // main: V-cycles.
        let mut f = FunctionBuilder::new("main", &[], Some(Type::F64));
        for _cycle in 0..cfg.cycles {
            // Pre-smoothing on the fine grid.
            for _ in 0..cfg.smooth_steps {
                f.call(
                    resid_id,
                    &[
                        Operand::Global(u),
                        Operand::Global(v),
                        Operand::Global(r),
                        Operand::const_i64(n),
                    ],
                    None,
                );
                f.call(
                    smooth_id,
                    &[
                        Operand::Global(u),
                        Operand::Global(r),
                        Operand::const_i64(n),
                    ],
                    None,
                );
            }
            // Residual and restriction to the coarse grid (full weighting).
            f.call(
                resid_id,
                &[
                    Operand::Global(u),
                    Operand::Global(v),
                    Operand::Global(r),
                    Operand::const_i64(n),
                ],
                None,
            );
            f.for_loop(Operand::const_i64(0), Operand::const_i64(nc), |f, ic| {
                let i2 = f.mul(Operand::Reg(ic), Operand::const_i64(2));
                let i2p = f.add(Operand::Reg(i2), Operand::const_i64(1));
                let a = f.load_elem(Type::F64, r, Operand::Reg(i2));
                let b = f.load_elem(Type::F64, r, Operand::Reg(i2p));
                let s = f.fadd(Operand::Reg(a), Operand::Reg(b));
                let avg = f.fmul(Operand::Reg(s), Operand::const_f64(0.5));
                f.store_elem(Type::F64, rc, Operand::Reg(ic), Operand::Reg(avg));
                f.store_elem(Type::F64, uc, Operand::Reg(ic), Operand::const_f64(0.0));
            });
            // Coarse-grid smoothing (acts as the approximate coarse solve).
            for _ in 0..(2 * cfg.smooth_steps) {
                f.call(
                    smooth_id,
                    &[
                        Operand::Global(uc),
                        Operand::Global(rc),
                        Operand::const_i64(nc),
                    ],
                    None,
                );
            }
            // Prolongation: u[2i] += uc[i], u[2i+1] += uc[i].
            f.for_loop(Operand::const_i64(0), Operand::const_i64(nc), |f, ic| {
                let corr = f.load_elem(Type::F64, uc, Operand::Reg(ic));
                let i2 = f.mul(Operand::Reg(ic), Operand::const_i64(2));
                let i2p = f.add(Operand::Reg(i2), Operand::const_i64(1));
                for idx in [i2, i2p] {
                    let cur = f.load_elem(Type::F64, u, Operand::Reg(idx));
                    let nu = f.fadd(Operand::Reg(cur), Operand::Reg(corr));
                    f.store_elem(Type::F64, u, Operand::Reg(idx), Operand::Reg(nu));
                }
            });
            // Post-smoothing.
            for _ in 0..cfg.smooth_steps {
                f.call(
                    resid_id,
                    &[
                        Operand::Global(u),
                        Operand::Global(v),
                        Operand::Global(r),
                        Operand::const_i64(n),
                    ],
                    None,
                );
                f.call(
                    smooth_id,
                    &[
                        Operand::Global(u),
                        Operand::Global(r),
                        Operand::const_i64(n),
                    ],
                    None,
                );
            }
        }
        // Final residual norm.
        f.call(
            resid_id,
            &[
                Operand::Global(u),
                Operand::Global(v),
                Operand::Global(r),
                Operand::const_i64(n),
            ],
            None,
        );
        let acc = f.alloc_reg(Type::F64);
        f.mov(acc, Operand::const_f64(0.0));
        f.for_loop(Operand::const_i64(0), Operand::const_i64(n), |f, i| {
            let ri = f.load_elem(Type::F64, r, Operand::Reg(i));
            let sq = f.fmul(Operand::Reg(ri), Operand::Reg(ri));
            let s = f.fadd(Operand::Reg(acc), Operand::Reg(sq));
            f.mov(acc, Operand::Reg(s));
        });
        let norm = f.sqrt(Operand::Reg(acc));
        f.store_elem(
            Type::F64,
            resid_norm,
            Operand::const_i64(0),
            Operand::Reg(norm),
        );
        f.ret(Some(Operand::Reg(norm)));

        m.add_function(f.finish());
        assert_verified(&m);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::golden_run;

    #[test]
    fn v_cycles_reduce_the_residual() {
        let mg = Mg::default();
        let outcome = golden_run(&mg).unwrap();
        assert!(outcome.status.is_completed());
        let initial = crate::linalg::norm2(&random_vector(mg.config.n, -1.0, 1.0, mg.config.seed));
        let after = outcome.return_f64();
        assert!(
            after < 0.7 * initial,
            "V-cycles should reduce the residual: {after} vs {initial}"
        );
        assert_eq!(outcome.global_f64("u").len(), mg.config.n);
    }

    #[test]
    fn golden_is_deterministic() {
        let mg = Mg::default();
        let a = golden_run(&mg).unwrap();
        let b = golden_run(&mg).unwrap();
        assert!(a.bits_identical(&b));
    }

    #[test]
    fn table1_metadata() {
        let mg = Mg::default();
        assert_eq!(mg.name(), "MG");
        assert_eq!(mg.code_segment(), "mg3P");
        assert_eq!(mg.target_objects(), vec!["u", "r"]);
        let module = mg.build();
        assert!(module.function_id("resid").is_some());
        assert!(module.function_id("psinv").is_some());
    }
}
