//! Reduced-scale re-implementations of the six NAS Parallel Benchmarks
//! evaluated by the paper (Table I): CG, MG, FT, BT, SP and LU.
//!
//! Each kernel reproduces the *evaluated code segment* and its target data
//! objects at a problem size small enough for exhaustive-injection validation
//! on a single machine, while keeping the operation mix (integer index
//! indirection, floating-point accumulation, overwrite-heavy initialization,
//! line solves, transforms) that determines each data object's aDVF.

pub mod bt;
pub mod cg;
pub mod ft;
pub mod lu;
pub mod mg;
pub mod sp;

pub use bt::{Bt, BtConfig};
pub use cg::{Cg, CgConfig};
pub use ft::{Ft, FtConfig};
pub use lu::{Lu, LuConfig};
pub use mg::{Mg, MgConfig};
pub use sp::{Sp, SpConfig};
