//! NPB SP — Scalar Penta-diagonal solver (Table I).
//!
//! The paper studies the routine `x_solve` with target data objects `rhoi`
//! (the double-precision inverse-density auxiliary array, aDVF ≈ 0.99,
//! dominated by operation-level masking) and `grid_points` (the integer grid
//! dimension array, aDVF ≈ 0.06 — the most vulnerable object in the study).
//!
//! The kernel mirrors SP's structure: `rhoi` is computed as the reciprocal of
//! the density component of `u`, the right-hand side is assembled from `u`
//! and `rhoi`, and a scalar pentadiagonal line solve (two-step forward
//! elimination, two-step back substitution) runs along x lines with loop
//! bounds and indices taken from `grid_points`.

use crate::linalg::random_vector;
use crate::spec::{Acceptance, Workload};
use moard_ir::prelude::*;
use moard_ir::verify::assert_verified;

/// Problem configuration for the SP kernel.
#[derive(Debug, Clone, Copy)]
pub struct SpConfig {
    /// Grid points per dimension.
    pub nx: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SpConfig {
    fn default() -> Self {
        SpConfig {
            nx: 6,
            seed: 0x5E_ED59,
        }
    }
}

/// The SP workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sp {
    /// Problem configuration.
    pub config: SpConfig,
}

impl Sp {
    /// SP with an explicit configuration.
    pub fn with_config(config: SpConfig) -> Self {
        Sp { config }
    }
}

impl Workload for Sp {
    fn name(&self) -> &'static str {
        "SP"
    }

    fn description(&self) -> &'static str {
        "Scalar Penta-diagonal solver (reduced class S)"
    }

    fn code_segment(&self) -> &'static str {
        "x_solve"
    }

    fn target_objects(&self) -> Vec<&'static str> {
        vec!["rhoi", "grid_points"]
    }

    fn output_objects(&self) -> Vec<&'static str> {
        vec!["rhs"]
    }

    fn acceptance(&self) -> Acceptance {
        Acceptance::MaxRelDiff(1e-5)
    }

    fn build(&self) -> Module {
        let cfg = self.config;
        let nx = cfg.nx;
        let ncell = nx * nx * nx;

        let mut m = Module::new("sp");
        let grid_points = m.add_global(Global::from_i64(
            "grid_points",
            &[nx as i64, nx as i64, nx as i64],
        ));
        let u_init = random_vector(ncell, 1.0, 2.0, cfg.seed);
        let u = m.add_global(Global::from_f64("u", &u_init));
        let rhoi = m.add_global(Global::zeroed("rhoi", Type::F64, ncell as u64));
        let rhs = m.add_global(Global::zeroed("rhs", Type::F64, ncell as u64));

        let mut f = FunctionBuilder::new("main", &[], Some(Type::F64));
        let gx = f.load_elem(Type::I64, grid_points, Operand::const_i64(0));
        let gy = f.load_elem(Type::I64, grid_points, Operand::const_i64(1));
        let gz = f.load_elem(Type::I64, grid_points, Operand::const_i64(2));

        // rhoi = 1 / u   and   rhs = 0.8 * u * rhoi + 0.3 * u
        // (the compute_rhs stand-in; every element of rhoi is written once
        // and read back, the overwrite-then-consume mix that gives rhoi its
        // high operation-level masking).
        f.for_loop(Operand::const_i64(0), Operand::Reg(gz), |f, k| {
            f.for_loop(Operand::const_i64(0), Operand::Reg(gy), |f, j| {
                f.for_loop(Operand::const_i64(0), Operand::Reg(gx), |f, i| {
                    let kj = f.mul(Operand::Reg(k), Operand::Reg(gy));
                    let kj = f.add(Operand::Reg(kj), Operand::Reg(j));
                    let kji = f.mul(Operand::Reg(kj), Operand::Reg(gx));
                    let idx = f.add(Operand::Reg(kji), Operand::Reg(i));
                    let uv = f.load_elem(Type::F64, u, Operand::Reg(idx));
                    let inv = f.fdiv(Operand::const_f64(1.0), Operand::Reg(uv));
                    f.store_elem(Type::F64, rhoi, Operand::Reg(idx), Operand::Reg(inv));
                    let ri = f.load_elem(Type::F64, rhoi, Operand::Reg(idx));
                    let t1 = f.fmul(Operand::Reg(uv), Operand::Reg(ri));
                    let t1 = f.fmul(Operand::Reg(t1), Operand::const_f64(0.8));
                    let t2 = f.fmul(Operand::Reg(uv), Operand::const_f64(0.3));
                    let r = f.fadd(Operand::Reg(t1), Operand::Reg(t2));
                    f.store_elem(Type::F64, rhs, Operand::Reg(idx), Operand::Reg(r));
                });
            });
        });

        // x_solve: scalar pentadiagonal elimination along x lines, using a
        // constant-coefficient stencil scaled by rhoi at the pivot.
        f.for_loop(Operand::const_i64(0), Operand::Reg(gz), |f, k| {
            f.for_loop(Operand::const_i64(0), Operand::Reg(gy), |f, j| {
                // Forward sweep eliminating the two sub-diagonals.
                f.for_loop(Operand::const_i64(2), Operand::Reg(gx), |f, i| {
                    let kj = f.mul(Operand::Reg(k), Operand::Reg(gy));
                    let kj = f.add(Operand::Reg(kj), Operand::Reg(j));
                    let kji = f.mul(Operand::Reg(kj), Operand::Reg(gx));
                    let idx = f.add(Operand::Reg(kji), Operand::Reg(i));
                    let im1 = f.sub(Operand::Reg(i), Operand::const_i64(1));
                    let im2 = f.sub(Operand::Reg(i), Operand::const_i64(2));
                    let idx1 = f.add(Operand::Reg(kji), Operand::Reg(im1));
                    let idx2 = f.add(Operand::Reg(kji), Operand::Reg(im2));
                    let pivot = f.load_elem(Type::F64, rhoi, Operand::Reg(idx));
                    let r0 = f.load_elem(Type::F64, rhs, Operand::Reg(idx));
                    let r1 = f.load_elem(Type::F64, rhs, Operand::Reg(idx1));
                    let r2 = f.load_elem(Type::F64, rhs, Operand::Reg(idx2));
                    // rhs[i] -= 0.25*pivot*rhs[i-1] + 0.1*pivot*rhs[i-2]
                    let c1 = f.fmul(Operand::Reg(pivot), Operand::const_f64(0.25));
                    let c2 = f.fmul(Operand::Reg(pivot), Operand::const_f64(0.1));
                    let t1 = f.fmul(Operand::Reg(c1), Operand::Reg(r1));
                    let t2 = f.fmul(Operand::Reg(c2), Operand::Reg(r2));
                    let sub = f.fadd(Operand::Reg(t1), Operand::Reg(t2));
                    let nr = f.fsub(Operand::Reg(r0), Operand::Reg(sub));
                    f.store_elem(Type::F64, rhs, Operand::Reg(idx), Operand::Reg(nr));
                });
                // Backward sweep eliminating the two super-diagonals.
                f.for_loop(Operand::const_i64(0), Operand::Reg(gx), |f, t| {
                    let gxm1 = f.sub(Operand::Reg(gx), Operand::const_i64(1));
                    let i = f.sub(Operand::Reg(gxm1), Operand::Reg(t));
                    let bound = f.sub(Operand::Reg(gx), Operand::const_i64(3));
                    let fits = f.cmp(CmpPred::Sle, Operand::Reg(i), Operand::Reg(bound));
                    f.if_then(Operand::Reg(fits), |f| {
                        let kj = f.mul(Operand::Reg(k), Operand::Reg(gy));
                        let kj = f.add(Operand::Reg(kj), Operand::Reg(j));
                        let kji = f.mul(Operand::Reg(kj), Operand::Reg(gx));
                        let idx = f.add(Operand::Reg(kji), Operand::Reg(i));
                        let ip1 = f.add(Operand::Reg(i), Operand::const_i64(1));
                        let ip2 = f.add(Operand::Reg(i), Operand::const_i64(2));
                        let idx1 = f.add(Operand::Reg(kji), Operand::Reg(ip1));
                        let idx2 = f.add(Operand::Reg(kji), Operand::Reg(ip2));
                        let pivot = f.load_elem(Type::F64, rhoi, Operand::Reg(idx));
                        let r0 = f.load_elem(Type::F64, rhs, Operand::Reg(idx));
                        let r1 = f.load_elem(Type::F64, rhs, Operand::Reg(idx1));
                        let r2 = f.load_elem(Type::F64, rhs, Operand::Reg(idx2));
                        let c1 = f.fmul(Operand::Reg(pivot), Operand::const_f64(0.2));
                        let c2 = f.fmul(Operand::Reg(pivot), Operand::const_f64(0.05));
                        let t1 = f.fmul(Operand::Reg(c1), Operand::Reg(r1));
                        let t2 = f.fmul(Operand::Reg(c2), Operand::Reg(r2));
                        let sub = f.fadd(Operand::Reg(t1), Operand::Reg(t2));
                        let nr = f.fsub(Operand::Reg(r0), Operand::Reg(sub));
                        f.store_elem(Type::F64, rhs, Operand::Reg(idx), Operand::Reg(nr));
                    });
                });
            });
        });

        // Scalar summary.
        let total = f.alloc_reg(Type::F64);
        f.mov(total, Operand::const_f64(0.0));
        f.for_loop(
            Operand::const_i64(0),
            Operand::const_i64(ncell as i64),
            |f, e| {
                let v = f.load_elem(Type::F64, rhs, Operand::Reg(e));
                let s = f.fadd(Operand::Reg(total), Operand::Reg(v));
                f.mov(total, Operand::Reg(s));
            },
        );
        f.ret(Some(Operand::Reg(total)));

        m.add_function(f.finish());
        assert_verified(&m);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::golden_run;

    fn reference(cfg: SpConfig) -> Vec<f64> {
        let nx = cfg.nx;
        let u = random_vector(nx * nx * nx, 1.0, 2.0, cfg.seed);
        let rhoi: Vec<f64> = u.iter().map(|v| 1.0 / v).collect();
        let mut rhs: Vec<f64> = u
            .iter()
            .zip(rhoi.iter())
            .map(|(uv, ri)| 0.8 * uv * ri + 0.3 * uv)
            .collect();
        let idx = |k: usize, j: usize, i: usize| (k * nx + j) * nx + i;
        for k in 0..nx {
            for j in 0..nx {
                for i in 2..nx {
                    let pivot = rhoi[idx(k, j, i)];
                    let sub =
                        0.25 * pivot * rhs[idx(k, j, i - 1)] + 0.1 * pivot * rhs[idx(k, j, i - 2)];
                    rhs[idx(k, j, i)] -= sub;
                }
                for t in 0..nx {
                    let i = nx - 1 - t;
                    if i + 2 < nx {
                        let pivot = rhoi[idx(k, j, i)];
                        let sub = 0.2 * pivot * rhs[idx(k, j, i + 1)]
                            + 0.05 * pivot * rhs[idx(k, j, i + 2)];
                        rhs[idx(k, j, i)] -= sub;
                    }
                }
            }
        }
        rhs
    }

    #[test]
    fn golden_run_matches_reference_penta_solve() {
        let sp = Sp::default();
        let outcome = golden_run(&sp).unwrap();
        assert!(outcome.status.is_completed());
        let want = reference(sp.config);
        let got = outcome.global_f64("rhs");
        assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(want.iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn table1_metadata() {
        let sp = Sp::default();
        assert_eq!(sp.name(), "SP");
        assert_eq!(sp.code_segment(), "x_solve");
        assert_eq!(sp.target_objects(), vec!["rhoi", "grid_points"]);
    }
}
