//! NPB BT — Block Tri-diagonal solver (Table I).
//!
//! The paper studies the routine `x_solve` with target data objects
//! `grid_points` (the integer array holding the grid dimensions, which drives
//! loop bounds and indexing — its corruption "can easily cause major changes
//! in computation", giving it a low aDVF of ≈0.38) and `u` (the
//! double-precision state array).
//!
//! The kernel is a reduced-scale Thomas-algorithm sweep along the x lines of
//! a 3-D grid: forward elimination followed by back substitution on a
//! diagonally dominant tridiagonal system per line, with the right-hand side
//! derived from `u`.  Loop bounds and linear indices are *loaded from
//! `grid_points`* exactly as in NPB, which is what exposes the index array to
//! the fault model.

use crate::linalg::random_vector;
use crate::spec::{Acceptance, Workload};
use moard_ir::prelude::*;
use moard_ir::verify::assert_verified;

/// Problem configuration for the BT kernel.
#[derive(Debug, Clone, Copy)]
pub struct BtConfig {
    /// Grid points per dimension.
    pub nx: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BtConfig {
    fn default() -> Self {
        BtConfig {
            nx: 6,
            seed: 0x5E_EDB7,
        }
    }
}

/// The BT workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bt {
    /// Problem configuration.
    pub config: BtConfig,
}

impl Bt {
    /// BT with an explicit configuration.
    pub fn with_config(config: BtConfig) -> Self {
        Bt { config }
    }
}

impl Workload for Bt {
    fn name(&self) -> &'static str {
        "BT"
    }

    fn description(&self) -> &'static str {
        "Block Tri-diagonal solver (reduced class S)"
    }

    fn code_segment(&self) -> &'static str {
        "x_solve"
    }

    fn target_objects(&self) -> Vec<&'static str> {
        vec!["grid_points", "u"]
    }

    fn output_objects(&self) -> Vec<&'static str> {
        vec!["rhs"]
    }

    fn acceptance(&self) -> Acceptance {
        Acceptance::MaxRelDiff(1e-5)
    }

    fn build(&self) -> Module {
        let cfg = self.config;
        let nx = cfg.nx;
        let ncell = nx * nx * nx;

        let mut m = Module::new("bt");
        let grid_points = m.add_global(Global::from_i64(
            "grid_points",
            &[nx as i64, nx as i64, nx as i64],
        ));
        let u_init = random_vector(ncell, 0.5, 1.5, cfg.seed);
        let u = m.add_global(Global::from_f64("u", &u_init));
        let rhs = m.add_global(Global::zeroed("rhs", Type::F64, ncell as u64));
        // Scratch diagonals for one line (length nx).
        let lhs_a = m.add_global(Global::zeroed("lhs_a", Type::F64, nx as u64));
        let lhs_b = m.add_global(Global::zeroed("lhs_b", Type::F64, nx as u64));
        let lhs_c = m.add_global(Global::zeroed("lhs_c", Type::F64, nx as u64));

        let mut f = FunctionBuilder::new("main", &[], Some(Type::F64));

        // Load the grid dimensions from grid_points (the NPB idiom that makes
        // the integer array participate in almost every index computation).
        let gx = f.load_elem(Type::I64, grid_points, Operand::const_i64(0));
        let gy = f.load_elem(Type::I64, grid_points, Operand::const_i64(1));
        let gz = f.load_elem(Type::I64, grid_points, Operand::const_i64(2));

        // rhs = 1.2 * u  (the compute_rhs stand-in).
        f.for_loop(Operand::const_i64(0), Operand::Reg(gz), |f, k| {
            f.for_loop(Operand::const_i64(0), Operand::Reg(gy), |f, j| {
                f.for_loop(Operand::const_i64(0), Operand::Reg(gx), |f, i| {
                    let kj = f.mul(Operand::Reg(k), Operand::Reg(gy));
                    let kj = f.add(Operand::Reg(kj), Operand::Reg(j));
                    let kji = f.mul(Operand::Reg(kj), Operand::Reg(gx));
                    let idx = f.add(Operand::Reg(kji), Operand::Reg(i));
                    let uv = f.load_elem(Type::F64, u, Operand::Reg(idx));
                    let scaled = f.fmul(Operand::Reg(uv), Operand::const_f64(1.2));
                    f.store_elem(Type::F64, rhs, Operand::Reg(idx), Operand::Reg(scaled));
                });
            });
        });

        // x_solve: for each (k, j) line, assemble a tridiagonal system whose
        // coefficients depend on u, then Thomas-eliminate in place on rhs.
        f.for_loop(Operand::const_i64(0), Operand::Reg(gz), |f, k| {
            f.for_loop(Operand::const_i64(0), Operand::Reg(gy), |f, j| {
                // Assemble the three diagonals for this line.
                f.for_loop(Operand::const_i64(0), Operand::Reg(gx), |f, i| {
                    let kj = f.mul(Operand::Reg(k), Operand::Reg(gy));
                    let kj = f.add(Operand::Reg(kj), Operand::Reg(j));
                    let kji = f.mul(Operand::Reg(kj), Operand::Reg(gx));
                    let idx = f.add(Operand::Reg(kji), Operand::Reg(i));
                    let uv = f.load_elem(Type::F64, u, Operand::Reg(idx));
                    // b = 4 + u, a = c = -1 (diagonally dominant).
                    let diag = f.fadd(Operand::Reg(uv), Operand::const_f64(4.0));
                    f.store_elem(Type::F64, lhs_b, Operand::Reg(i), Operand::Reg(diag));
                    f.store_elem(Type::F64, lhs_a, Operand::Reg(i), Operand::const_f64(-1.0));
                    f.store_elem(Type::F64, lhs_c, Operand::Reg(i), Operand::const_f64(-1.0));
                });
                // Forward elimination over the line.
                f.for_loop(Operand::const_i64(1), Operand::Reg(gx), |f, i| {
                    let im1 = f.sub(Operand::Reg(i), Operand::const_i64(1));
                    let a_i = f.load_elem(Type::F64, lhs_a, Operand::Reg(i));
                    let b_prev = f.load_elem(Type::F64, lhs_b, Operand::Reg(im1));
                    let fac = f.fdiv(Operand::Reg(a_i), Operand::Reg(b_prev));
                    let c_prev = f.load_elem(Type::F64, lhs_c, Operand::Reg(im1));
                    let b_i = f.load_elem(Type::F64, lhs_b, Operand::Reg(i));
                    let corr = f.fmul(Operand::Reg(fac), Operand::Reg(c_prev));
                    let nb = f.fsub(Operand::Reg(b_i), Operand::Reg(corr));
                    f.store_elem(Type::F64, lhs_b, Operand::Reg(i), Operand::Reg(nb));
                    // rhs[i] -= fac * rhs[i-1]
                    let kj = f.mul(Operand::Reg(k), Operand::Reg(gy));
                    let kj = f.add(Operand::Reg(kj), Operand::Reg(j));
                    let kji = f.mul(Operand::Reg(kj), Operand::Reg(gx));
                    let idx = f.add(Operand::Reg(kji), Operand::Reg(i));
                    let idx_prev = f.add(Operand::Reg(kji), Operand::Reg(im1));
                    let r_prev = f.load_elem(Type::F64, rhs, Operand::Reg(idx_prev));
                    let r_i = f.load_elem(Type::F64, rhs, Operand::Reg(idx));
                    let corr = f.fmul(Operand::Reg(fac), Operand::Reg(r_prev));
                    let nr = f.fsub(Operand::Reg(r_i), Operand::Reg(corr));
                    f.store_elem(Type::F64, rhs, Operand::Reg(idx), Operand::Reg(nr));
                });
                // Back substitution: rhs[i] = (rhs[i] - c[i]*rhs[i+1]) / b[i],
                // iterating i from gx-1 down to 0 (expressed with an
                // ascending loop over t and i = gx-1-t).
                f.for_loop(Operand::const_i64(0), Operand::Reg(gx), |f, t| {
                    let gxm1 = f.sub(Operand::Reg(gx), Operand::const_i64(1));
                    let i = f.sub(Operand::Reg(gxm1), Operand::Reg(t));
                    let kj = f.mul(Operand::Reg(k), Operand::Reg(gy));
                    let kj = f.add(Operand::Reg(kj), Operand::Reg(j));
                    let kji = f.mul(Operand::Reg(kj), Operand::Reg(gx));
                    let idx = f.add(Operand::Reg(kji), Operand::Reg(i));
                    let r_i = f.load_elem(Type::F64, rhs, Operand::Reg(idx));
                    let acc = f.alloc_reg(Type::F64);
                    f.mov(acc, Operand::Reg(r_i));
                    let has_next = f.cmp(CmpPred::Slt, Operand::Reg(i), Operand::Reg(gxm1));
                    f.if_then(Operand::Reg(has_next), |f| {
                        let ip1 = f.add(Operand::Reg(i), Operand::const_i64(1));
                        let idx_next = f.add(Operand::Reg(kji), Operand::Reg(ip1));
                        let r_next = f.load_elem(Type::F64, rhs, Operand::Reg(idx_next));
                        let c_i = f.load_elem(Type::F64, lhs_c, Operand::Reg(i));
                        let corr = f.fmul(Operand::Reg(c_i), Operand::Reg(r_next));
                        let adj = f.fsub(Operand::Reg(acc), Operand::Reg(corr));
                        f.mov(acc, Operand::Reg(adj));
                    });
                    let b_i = f.load_elem(Type::F64, lhs_b, Operand::Reg(i));
                    let solved = f.fdiv(Operand::Reg(acc), Operand::Reg(b_i));
                    f.store_elem(Type::F64, rhs, Operand::Reg(idx), Operand::Reg(solved));
                });
            });
        });

        // Return the sum of the solution as a scalar summary.
        let total = f.alloc_reg(Type::F64);
        f.mov(total, Operand::const_f64(0.0));
        f.for_loop(
            Operand::const_i64(0),
            Operand::const_i64(ncell as i64),
            |f, e| {
                let v = f.load_elem(Type::F64, rhs, Operand::Reg(e));
                let s = f.fadd(Operand::Reg(total), Operand::Reg(v));
                f.mov(total, Operand::Reg(s));
            },
        );
        f.ret(Some(Operand::Reg(total)));

        m.add_function(f.finish());
        assert_verified(&m);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::golden_run;

    fn reference(cfg: BtConfig) -> Vec<f64> {
        let nx = cfg.nx;
        let u = random_vector(nx * nx * nx, 0.5, 1.5, cfg.seed);
        let mut rhs: Vec<f64> = u.iter().map(|v| 1.2 * v).collect();
        let idx = |k: usize, j: usize, i: usize| (k * nx + j) * nx + i;
        for k in 0..nx {
            for j in 0..nx {
                let mut b: Vec<f64> = (0..nx).map(|i| 4.0 + u[idx(k, j, i)]).collect();
                let c = vec![-1.0; nx];
                let a = vec![-1.0; nx];
                for i in 1..nx {
                    let fac = a[i] / b[i - 1];
                    b[i] -= fac * c[i - 1];
                    rhs[idx(k, j, i)] -= fac * rhs[idx(k, j, i - 1)];
                }
                for t in 0..nx {
                    let i = nx - 1 - t;
                    let mut acc = rhs[idx(k, j, i)];
                    if i + 1 < nx {
                        acc -= c[i] * rhs[idx(k, j, i + 1)];
                    }
                    rhs[idx(k, j, i)] = acc / b[i];
                }
            }
        }
        rhs
    }

    #[test]
    fn golden_run_matches_reference_thomas_solve() {
        let bt = Bt::default();
        let outcome = golden_run(&bt).unwrap();
        assert!(outcome.status.is_completed());
        let want = reference(bt.config);
        let got = outcome.global_f64("rhs");
        assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(want.iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn table1_metadata() {
        let bt = Bt::default();
        assert_eq!(bt.name(), "BT");
        assert_eq!(bt.code_segment(), "x_solve");
        assert_eq!(bt.target_objects(), vec!["grid_points", "u"]);
    }
}
