//! The [`Workload`] abstraction and the workload registry (Table I of the
//! paper).
//!
//! A workload bundles an IR module (the benchmark kernel), the names of the
//! *target data objects* whose resilience is studied, the names of the
//! *output* objects that define the application outcome, and the acceptance
//! criterion that distinguishes "numerically different but acceptable"
//! (algorithm-level masking) from silent data corruption.

use moard_ir::Module;
use moard_vm::{ExecOutcome, OutcomeClass, Vm, VmConfig, VmError};

/// Acceptance criterion comparing a fault-injected outcome against the golden
/// outcome over the workload's output objects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Acceptance {
    /// The maximum element-wise relative difference over all output objects
    /// must stay below the tolerance.
    MaxRelDiff(f64),
    /// The outcome must be bit-identical (no algorithm-level tolerance at
    /// all) — used for the plain matrix-multiply case study where numerical
    /// integrity is required.
    Exact,
}

/// A benchmark kernel studied by the MOARD evaluation.
pub trait Workload: Send + Sync {
    /// Short name, e.g. `"CG"` (matches Table I).
    fn name(&self) -> &'static str;

    /// One-line description (Table I's "Benchmark description").
    fn description(&self) -> &'static str;

    /// The routine the paper evaluates, e.g. `"conj_grad"` (Table I's
    /// "Code segment for evaluation").
    fn code_segment(&self) -> &'static str;

    /// Build the IR module implementing the kernel.
    fn build(&self) -> Module;

    /// Names of the target data objects (Table I's last column).
    fn target_objects(&self) -> Vec<&'static str>;

    /// Names of the globals that constitute the application outcome.
    fn output_objects(&self) -> Vec<&'static str>;

    /// Acceptance criterion for algorithm-level correctness.
    fn acceptance(&self) -> Acceptance {
        Acceptance::MaxRelDiff(1e-6)
    }

    /// Step budget for one execution of this workload (protects campaigns
    /// against corrupted loop bounds).
    fn max_steps(&self) -> u64 {
        2_000_000
    }

    /// Classify a fault-injected outcome against the golden outcome.
    fn classify(&self, golden: &ExecOutcome, outcome: &ExecOutcome) -> OutcomeClass {
        classify_by_outputs(golden, outcome, &self.output_objects(), self.acceptance())
    }
}

/// Default outcome classification shared by all workloads.
pub fn classify_by_outputs(
    golden: &ExecOutcome,
    outcome: &ExecOutcome,
    outputs: &[&str],
    acceptance: Acceptance,
) -> OutcomeClass {
    if !outcome.status.is_completed() {
        return OutcomeClass::Crashed;
    }
    let mut identical = true;
    let mut worst_rel = 0.0f64;
    for name in outputs {
        let g = golden.globals.get(*name);
        let o = outcome.globals.get(*name);
        match (g, o) {
            (Some(g), Some(o)) if g.len() == o.len() => {
                for (a, b) in g.iter().zip(o.iter()) {
                    if !a.bits_eq(b) {
                        identical = false;
                    }
                }
                worst_rel = worst_rel.max(outcome.max_rel_diff(golden, name));
            }
            _ => return OutcomeClass::Incorrect,
        }
    }
    match (&golden.return_value, &outcome.return_value) {
        (Some(a), Some(b)) if !a.bits_eq(b) => {
            identical = false;
            let (x, y) = (a.as_f64(), b.as_f64());
            if !y.is_finite() {
                worst_rel = f64::INFINITY;
            } else {
                let denom = x.abs().max(1e-12);
                worst_rel = worst_rel.max((x - y).abs() / denom);
            }
        }
        (Some(_), None) | (None, Some(_)) => return OutcomeClass::Incorrect,
        _ => {}
    }
    if identical {
        return OutcomeClass::Identical;
    }
    match acceptance {
        Acceptance::Exact => OutcomeClass::Incorrect,
        Acceptance::MaxRelDiff(tol) => {
            if worst_rel <= tol {
                OutcomeClass::Acceptable
            } else {
                OutcomeClass::Incorrect
            }
        }
    }
}

/// Execute the golden (error-free) run of a workload.
pub fn golden_run(workload: &dyn Workload) -> Result<ExecOutcome, VmError> {
    let module = workload.build();
    let vm = Vm::new(
        &module,
        VmConfig {
            max_steps: workload.max_steps(),
            ..VmConfig::default()
        },
    )?;
    Ok(vm.execute())
}

/// One row of Table I, for reports.
#[derive(Debug, Clone)]
pub struct WorkloadInfo {
    /// Benchmark name.
    pub name: &'static str,
    /// Description.
    pub description: &'static str,
    /// Evaluated code segment.
    pub code_segment: &'static str,
    /// Target data objects.
    pub targets: Vec<&'static str>,
}

impl WorkloadInfo {
    /// Collect the info of a workload.
    pub fn of(w: &dyn Workload) -> WorkloadInfo {
        WorkloadInfo {
            name: w.name(),
            description: w.description(),
            code_segment: w.code_segment(),
            targets: w.target_objects(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moard_ir::Value;
    use moard_vm::ExecStatus;
    use std::collections::BTreeMap;

    fn outcome(vals: &[f64], status: ExecStatus) -> ExecOutcome {
        let mut globals = BTreeMap::new();
        globals.insert(
            "out".to_string(),
            vals.iter().map(|&v| Value::F64(v)).collect(),
        );
        ExecOutcome {
            status,
            return_value: None,
            globals,
            steps: 1,
        }
    }

    #[test]
    fn classification_identical_acceptable_incorrect_crashed() {
        let golden = outcome(&[1.0, 2.0], ExecStatus::Completed);
        let same = outcome(&[1.0, 2.0], ExecStatus::Completed);
        let close = outcome(&[1.0, 2.0 + 1e-9], ExecStatus::Completed);
        let far = outcome(&[1.0, 4.0], ExecStatus::Completed);
        let crash = outcome(&[1.0, 2.0], ExecStatus::Timeout);
        let acc = Acceptance::MaxRelDiff(1e-6);
        assert_eq!(
            classify_by_outputs(&golden, &same, &["out"], acc),
            OutcomeClass::Identical
        );
        assert_eq!(
            classify_by_outputs(&golden, &close, &["out"], acc),
            OutcomeClass::Acceptable
        );
        assert_eq!(
            classify_by_outputs(&golden, &far, &["out"], acc),
            OutcomeClass::Incorrect
        );
        assert_eq!(
            classify_by_outputs(&golden, &crash, &["out"], acc),
            OutcomeClass::Crashed
        );
    }

    #[test]
    fn exact_acceptance_rejects_any_difference() {
        let golden = outcome(&[1.0], ExecStatus::Completed);
        let close = outcome(&[1.0 + 1e-15], ExecStatus::Completed);
        assert_eq!(
            classify_by_outputs(&golden, &close, &["out"], Acceptance::Exact),
            OutcomeClass::Incorrect
        );
    }

    #[test]
    fn missing_output_is_incorrect() {
        let golden = outcome(&[1.0], ExecStatus::Completed);
        let other = outcome(&[1.0], ExecStatus::Completed);
        assert_eq!(
            classify_by_outputs(&golden, &other, &["nope"], Acceptance::Exact),
            OutcomeClass::Incorrect
        );
    }
}
