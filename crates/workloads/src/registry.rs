//! The workload registry: uniform, extensible workload lookup.
//!
//! Earlier revisions resolved workload names with a hard-coded `match`; this
//! module replaces that with a first-class registry so the Table I
//! benchmarks, the MM/PF case studies, and out-of-crate workload families
//! (e.g. the ABFT variants in `moard-abft`, or workloads defined by a
//! downstream crate) all register through the same interface and become
//! visible to the CLI, the `AnalysisSession` façade, and the figure
//! binaries without touching this crate.

use crate::spec::Workload;
use std::sync::OnceLock;

/// Factory producing a fresh instance of a registered workload.
pub type WorkloadFactory = fn() -> Box<dyn Workload>;

/// Metadata describing one registered workload.
#[derive(Debug, Clone)]
pub struct WorkloadDescriptor {
    /// Canonical name (matches `Workload::name`), e.g. `"CG"`.
    pub name: &'static str,
    /// Extra lookup names, e.g. `"matmul"` for MM.
    pub aliases: &'static [&'static str],
    /// One-line description (Table I).
    pub description: &'static str,
    /// Evaluated code segment (Table I).
    pub code_segment: &'static str,
    /// Target data objects (Table I's last column).
    pub targets: Vec<&'static str>,
    /// True for the eight Table I benchmarks (excludes case studies).
    pub table1: bool,
}

/// A source of workloads.  `moard-workloads` ships [`Registry`], a concrete
/// mutable implementation; external crates can either register into a
/// [`Registry`] or implement this trait over their own storage.
pub trait WorkloadRegistry: Send + Sync {
    /// Metadata of every registered workload, in registration order.
    fn descriptors(&self) -> Vec<WorkloadDescriptor>;

    /// Instantiate a workload by name or alias (case-insensitive).
    fn create(&self, name: &str) -> Option<Box<dyn Workload>>;

    /// Canonical names of every registered workload, in registration order.
    fn names(&self) -> Vec<&'static str> {
        self.descriptors().iter().map(|d| d.name).collect()
    }

    /// True if `name` resolves to a registered workload.
    fn contains(&self, name: &str) -> bool {
        self.create(name).is_some()
    }

    /// Metadata of one registered workload, looked up by name or alias
    /// (case-insensitive) — the per-workload view of [`Self::descriptors`]
    /// used by the sweep engine's reporting surfaces.
    fn descriptor(&self, name: &str) -> Option<WorkloadDescriptor> {
        let wanted = name.to_ascii_lowercase();
        self.descriptors().into_iter().find(|d| {
            d.name.to_ascii_lowercase() == wanted
                || d.aliases.iter().any(|a| a.to_ascii_lowercase() == wanted)
        })
    }
}

struct Entry {
    aliases: &'static [&'static str],
    table1: bool,
    factory: WorkloadFactory,
}

/// The concrete, composable registry.
///
/// Starts [`Registry::empty`] or with the ten built-in workloads
/// ([`Registry::builtin`]); grows via [`Registry::register`].
#[derive(Default)]
pub struct Registry {
    entries: Vec<Entry>,
}

impl Registry {
    /// A registry with nothing registered.
    pub fn empty() -> Registry {
        Registry::default()
    }

    /// A registry holding the eight Table I benchmarks plus the MM and PF
    /// case studies, in the order of the paper's figures.
    pub fn builtin() -> Registry {
        let mut r = Registry::empty();
        r.register_table1(&[], || Box::new(crate::npb::Cg::default()));
        r.register_table1(&[], || Box::new(crate::npb::Mg::default()));
        r.register_table1(&[], || Box::new(crate::npb::Ft::default()));
        r.register_table1(&[], || Box::new(crate::npb::Bt::default()));
        r.register_table1(&[], || Box::new(crate::npb::Sp::default()));
        r.register_table1(&[], || Box::new(crate::npb::Lu::default()));
        r.register_table1(&[], || Box::new(crate::Lulesh::default()));
        r.register_table1(&[], || Box::new(crate::Amg::default()));
        r.register(&["matmul"], || Box::new(crate::MatMul::default()));
        r.register(&["particlefilter"], || Box::new(crate::Pf::default()));
        r
    }

    /// Register a workload (case study / external family).
    pub fn register(&mut self, aliases: &'static [&'static str], factory: WorkloadFactory) {
        self.entries.push(Entry {
            aliases,
            table1: false,
            factory,
        });
    }

    /// Register one of the Table I benchmarks.
    pub fn register_table1(&mut self, aliases: &'static [&'static str], factory: WorkloadFactory) {
        self.entries.push(Entry {
            aliases,
            table1: true,
            factory,
        });
    }

    /// Fresh instances of the Table I benchmarks, in registration order.
    pub fn table1(&self) -> Vec<Box<dyn Workload>> {
        self.entries
            .iter()
            .filter(|e| e.table1)
            .map(|e| (e.factory)())
            .collect()
    }

    /// Fresh instances of every registered workload, in registration order.
    pub fn all(&self) -> Vec<Box<dyn Workload>> {
        self.entries.iter().map(|e| (e.factory)()).collect()
    }
}

impl WorkloadRegistry for Registry {
    fn descriptors(&self) -> Vec<WorkloadDescriptor> {
        self.entries
            .iter()
            .map(|e| {
                let w = (e.factory)();
                WorkloadDescriptor {
                    name: w.name(),
                    aliases: e.aliases,
                    description: w.description(),
                    code_segment: w.code_segment(),
                    targets: w.target_objects(),
                    table1: e.table1,
                }
            })
            .collect()
    }

    fn create(&self, name: &str) -> Option<Box<dyn Workload>> {
        let wanted = name.to_ascii_lowercase();
        self.entries.iter().find_map(|e| {
            let w = (e.factory)();
            let hit = w.name().to_ascii_lowercase() == wanted
                || e.aliases.iter().any(|a| a.to_ascii_lowercase() == wanted);
            hit.then_some(w)
        })
    }
}

/// The process-wide built-in registry (Table I + case studies), built once.
pub fn builtin_registry() -> &'static Registry {
    static BUILTIN: OnceLock<Registry> = OnceLock::new();
    BUILTIN.get_or_init(Registry::builtin)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_has_ten_workloads_in_figure_order() {
        let names = builtin_registry().names();
        assert_eq!(
            names,
            vec!["CG", "MG", "FT", "BT", "SP", "LU", "LULESH", "AMG", "MM", "PF"]
        );
        assert_eq!(builtin_registry().table1().len(), 8);
        assert_eq!(builtin_registry().all().len(), 10);
    }

    #[test]
    fn lookup_is_case_insensitive_and_knows_aliases() {
        let r = builtin_registry();
        assert_eq!(r.create("cg").unwrap().name(), "CG");
        assert_eq!(r.create("LULESH").unwrap().name(), "LULESH");
        assert_eq!(r.create("MatMul").unwrap().name(), "MM");
        assert_eq!(r.create("ParticleFilter").unwrap().name(), "PF");
        assert!(r.create("not-a-workload").is_none());
        assert!(r.contains("mm") && !r.contains("zz"));
    }

    #[test]
    fn descriptors_carry_table1_metadata() {
        let descriptors = builtin_registry().descriptors();
        let cg = &descriptors[0];
        assert_eq!(cg.name, "CG");
        assert!(cg.table1);
        assert!(!cg.targets.is_empty());
        let mm = descriptors.iter().find(|d| d.name == "MM").unwrap();
        assert!(!mm.table1);
        assert_eq!(mm.aliases, &["matmul"]);
    }

    #[test]
    fn descriptor_lookup_follows_names_and_aliases() {
        let r = builtin_registry();
        assert_eq!(r.descriptor("CG").unwrap().name, "CG");
        assert_eq!(r.descriptor("matmul").unwrap().name, "MM");
        assert_eq!(r.descriptor("pf").unwrap().name, "PF");
        assert!(r.descriptor("nope").is_none());
    }

    #[test]
    fn external_registration_extends_a_registry() {
        let mut r = Registry::empty();
        assert!(r.create("mm").is_none());
        r.register(&["gemm"], || Box::new(crate::MatMul::default()));
        assert_eq!(r.create("gemm").unwrap().name(), "MM");
        assert_eq!(r.names(), vec!["MM"]);
        assert!(r.table1().is_empty());
    }
}
