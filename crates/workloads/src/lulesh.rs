//! LULESH — unstructured Lagrangian explicit shock hydrodynamics proxy app
//! (Table I; Karlin et al., cited as \[21\] in the paper).
//!
//! The paper studies the routine `CalcMonotonicQRegionForElems` with target
//! data objects `m_delv_zeta` (a double-precision velocity-gradient array,
//! plotted as `zeta`) and `m_elemBC` (an integer array of boundary-condition
//! flags, plotted as `elemBC`).  For the RFI comparison (Fig. 7) and the
//! model validation (Fig. 6) the coordinate arrays `m_x`, `m_y`, `m_z` of the
//! same routine's element loop are studied as well.
//!
//! The kernel reproduces the routine's structure: for every element it
//! gathers the ζ-direction velocity gradients of the element and its
//! neighbour, applies the monotonic limiter (min/max clamping against
//! `monoq_limiter`), branches on the boundary-condition flags, and computes
//! the artificial viscosity terms `qq` and `ql` from the limited gradient and
//! an element length scale derived from the nodal coordinates `m_x/m_y/m_z`.

use crate::linalg::random_vector;
use crate::spec::{Acceptance, Workload};
use moard_ir::prelude::*;
use moard_ir::verify::assert_verified;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Problem configuration for the LULESH kernel.
#[derive(Debug, Clone, Copy)]
pub struct LuleshConfig {
    /// Number of elements in the region (the paper uses a 5x5x5 input; we
    /// keep the element count but work on the flattened region).
    pub num_elem: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LuleshConfig {
    fn default() -> Self {
        LuleshConfig {
            num_elem: 125,
            seed: 0x5E_ED11,
        }
    }
}

/// The LULESH workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lulesh {
    /// Problem configuration.
    pub config: LuleshConfig,
}

impl Lulesh {
    /// LULESH with an explicit configuration.
    pub fn with_config(config: LuleshConfig) -> Self {
        Lulesh { config }
    }

    /// Boundary-condition flags: 0 for interior elements, 1 / 2 for the two
    /// ζ faces (deterministic pattern like the structured LULESH mesh).
    pub fn elem_bc(&self) -> Vec<i64> {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xbc);
        (0..self.config.num_elem)
            .map(|i| {
                if i % 25 == 0 {
                    1
                } else if i % 25 == 24 {
                    2
                } else if rng.gen_range(0..10) == 0 {
                    3
                } else {
                    0
                }
            })
            .collect()
    }
}

impl Workload for Lulesh {
    fn name(&self) -> &'static str {
        "LULESH"
    }

    fn description(&self) -> &'static str {
        "Unstructured Lagrangian explicit shock hydrodynamics (input 5x5x5)"
    }

    fn code_segment(&self) -> &'static str {
        "CalcMonotonicQRegionForElems"
    }

    fn target_objects(&self) -> Vec<&'static str> {
        vec!["m_delv_zeta", "m_elemBC"]
    }

    fn output_objects(&self) -> Vec<&'static str> {
        vec!["qq", "ql"]
    }

    fn acceptance(&self) -> Acceptance {
        Acceptance::MaxRelDiff(1e-6)
    }

    fn build(&self) -> Module {
        let cfg = self.config;
        let ne = cfg.num_elem;
        let n = ne as i64;

        let mut m = Module::new("lulesh");
        let delv_init = random_vector(ne, -0.5, 0.5, cfg.seed);
        let x_init = random_vector(ne, 0.0, 1.0, cfg.seed ^ 1);
        let y_init = random_vector(ne, 0.0, 1.0, cfg.seed ^ 2);
        let z_init = random_vector(ne, 0.0, 1.0, cfg.seed ^ 3);
        let m_delv_zeta = m.add_global(Global::from_f64("m_delv_zeta", &delv_init));
        let m_elem_bc = m.add_global(Global::from_i64("m_elemBC", &self.elem_bc()));
        let m_x = m.add_global(Global::from_f64("m_x", &x_init));
        let m_y = m.add_global(Global::from_f64("m_y", &y_init));
        let m_z = m.add_global(Global::from_f64("m_z", &z_init));
        let qq = m.add_global(Global::zeroed("qq", Type::F64, ne as u64));
        let ql = m.add_global(Global::zeroed("ql", Type::F64, ne as u64));

        let monoq_limiter = 2.0;
        let monoq_max_slope = 1.0;
        let qlc = 0.5;
        let qqc = 2.0;

        let mut f = FunctionBuilder::new("main", &[], Some(Type::F64));
        f.for_loop(Operand::const_i64(0), Operand::const_i64(n), |f, e| {
            // Gather delv for the element and its +ζ neighbour (clamped).
            let dz = f.load_elem(Type::F64, m_delv_zeta, Operand::Reg(e));
            let ep1 = f.add(Operand::Reg(e), Operand::const_i64(1));
            let last = f.cmp(CmpPred::Sge, Operand::Reg(ep1), Operand::const_i64(n));
            let nb_idx = f.select(
                Type::I64,
                Operand::Reg(last),
                Operand::Reg(e),
                Operand::Reg(ep1),
            );
            let dzp = f.load_elem(Type::F64, m_delv_zeta, Operand::Reg(nb_idx));

            // norm = 1 / (delv + eps); phi = 0.5*(delv_m/denominator ratios)
            let eps = 1e-36;
            let denom = f.fadd(Operand::Reg(dz), Operand::const_f64(eps));
            let norm = f.fdiv(Operand::const_f64(1.0), Operand::Reg(denom));
            let phizm = f.fmul(Operand::Reg(dzp), Operand::Reg(norm));

            // Branch on the boundary condition flags: on ζ boundary faces the
            // neighbour ratio is forced (1 on face-1, 0 on face-2 / free).
            let bc = f.load_elem(Type::I64, m_elem_bc, Operand::Reg(e));
            let phi = f.alloc_reg(Type::F64);
            f.mov(phi, Operand::Reg(phizm));
            let is_face1 = f.cmp(CmpPred::Eq, Operand::Reg(bc), Operand::const_i64(1));
            f.if_then(Operand::Reg(is_face1), |f| {
                f.mov(phi, Operand::const_f64(1.0));
            });
            let is_face2 = f.cmp(CmpPred::Eq, Operand::Reg(bc), Operand::const_i64(2));
            f.if_then(Operand::Reg(is_face2), |f| {
                f.mov(phi, Operand::const_f64(0.0));
            });

            // Monotonic limiter: phi = clamp(phi, 0, monoq_max_slope) scaled
            // by the limiter constant.
            let scaled = f.fmul(Operand::Reg(phi), Operand::const_f64(monoq_limiter));
            let half = f.fmul(Operand::Reg(scaled), Operand::const_f64(0.5));
            let zero_cl = f.intrinsic(
                Intrinsic::FMax,
                &[Operand::Reg(half), Operand::const_f64(0.0)],
                Type::F64,
            );
            let limited = f.intrinsic(
                Intrinsic::FMin,
                &[Operand::Reg(zero_cl), Operand::const_f64(monoq_max_slope)],
                Type::F64,
            );

            // Element length scale from the nodal coordinates.
            let xv = f.load_elem(Type::F64, m_x, Operand::Reg(e));
            let yv = f.load_elem(Type::F64, m_y, Operand::Reg(e));
            let zv = f.load_elem(Type::F64, m_z, Operand::Reg(e));
            let xx = f.fmul(Operand::Reg(xv), Operand::Reg(xv));
            let yy = f.fmul(Operand::Reg(yv), Operand::Reg(yv));
            let zz = f.fmul(Operand::Reg(zv), Operand::Reg(zv));
            let s1 = f.fadd(Operand::Reg(xx), Operand::Reg(yy));
            let s2 = f.fadd(Operand::Reg(s1), Operand::Reg(zz));
            let length = f.sqrt(Operand::Reg(s2));

            // Artificial viscosity terms, zeroed for expanding elements
            // (delv > 0), quadratic and linear otherwise.
            let expanding = f.cmp(CmpPred::FOgt, Operand::Reg(dz), Operand::const_f64(0.0));
            f.if_then_else(
                Operand::Reg(expanding),
                |f| {
                    f.store_elem(Type::F64, qq, Operand::Reg(e), Operand::const_f64(0.0));
                    f.store_elem(Type::F64, ql, Operand::Reg(e), Operand::const_f64(0.0));
                },
                |f| {
                    let one_minus = f.fsub(Operand::const_f64(1.0), Operand::Reg(limited));
                    let dl = f.fmul(Operand::Reg(dz), Operand::Reg(length));
                    let dl_lim = f.fmul(Operand::Reg(dl), Operand::Reg(one_minus));
                    let qlv = f.fmul(Operand::Reg(dl_lim), Operand::const_f64(qlc));
                    let qlv = f.fabs(Operand::Reg(qlv));
                    let dl2 = f.fmul(Operand::Reg(dl_lim), Operand::Reg(dl_lim));
                    let qqv = f.fmul(Operand::Reg(dl2), Operand::const_f64(qqc));
                    f.store_elem(Type::F64, ql, Operand::Reg(e), Operand::Reg(qlv));
                    f.store_elem(Type::F64, qq, Operand::Reg(e), Operand::Reg(qqv));
                },
            );
        });

        // Scalar summary: total artificial viscosity.
        let total = f.alloc_reg(Type::F64);
        f.mov(total, Operand::const_f64(0.0));
        f.for_loop(Operand::const_i64(0), Operand::const_i64(n), |f, e| {
            let a = f.load_elem(Type::F64, qq, Operand::Reg(e));
            let b = f.load_elem(Type::F64, ql, Operand::Reg(e));
            let s = f.fadd(Operand::Reg(a), Operand::Reg(b));
            let t = f.fadd(Operand::Reg(total), Operand::Reg(s));
            f.mov(total, Operand::Reg(t));
        });
        f.ret(Some(Operand::Reg(total)));

        m.add_function(f.finish());
        assert_verified(&m);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::golden_run;

    fn reference(cfg: LuleshConfig, bc: &[i64]) -> (Vec<f64>, Vec<f64>) {
        let ne = cfg.num_elem;
        let delv = random_vector(ne, -0.5, 0.5, cfg.seed);
        let xs = random_vector(ne, 0.0, 1.0, cfg.seed ^ 1);
        let ys = random_vector(ne, 0.0, 1.0, cfg.seed ^ 2);
        let zs = random_vector(ne, 0.0, 1.0, cfg.seed ^ 3);
        let mut qq = vec![0.0; ne];
        let mut ql = vec![0.0; ne];
        for e in 0..ne {
            let dz = delv[e];
            let nb = if e + 1 >= ne { e } else { e + 1 };
            let dzp = delv[nb];
            let norm = 1.0 / (dz + 1e-36);
            let mut phi = dzp * norm;
            if bc[e] == 1 {
                phi = 1.0;
            }
            if bc[e] == 2 {
                phi = 0.0;
            }
            let limited = (phi * 2.0 * 0.5).clamp(0.0, 1.0);
            let length = (xs[e] * xs[e] + ys[e] * ys[e] + zs[e] * zs[e]).sqrt();
            if dz > 0.0 {
                qq[e] = 0.0;
                ql[e] = 0.0;
            } else {
                let dl_lim = dz * length * (1.0 - limited);
                ql[e] = (dl_lim * 0.5).abs();
                qq[e] = dl_lim * dl_lim * 2.0;
            }
        }
        (qq, ql)
    }

    #[test]
    fn golden_run_matches_reference() {
        let w = Lulesh::default();
        let outcome = golden_run(&w).unwrap();
        assert!(outcome.status.is_completed());
        let (qq_ref, ql_ref) = reference(w.config, &w.elem_bc());
        let qq = outcome.global_f64("qq");
        let ql = outcome.global_f64("ql");
        for (a, b) in qq.iter().zip(qq_ref.iter()) {
            assert!((a - b).abs() < 1e-9, "qq mismatch {a} vs {b}");
        }
        for (a, b) in ql.iter().zip(ql_ref.iter()) {
            assert!((a - b).abs() < 1e-9, "ql mismatch {a} vs {b}");
        }
    }

    #[test]
    fn boundary_flags_matter() {
        // The boundary-condition array must actually influence the outcome —
        // otherwise elemBC's aDVF would be trivially 1.
        let w = Lulesh::default();
        let bc = w.elem_bc();
        assert!(bc.contains(&1));
        assert!(bc.contains(&2));
        assert!(bc.contains(&0));
    }

    #[test]
    fn table1_metadata() {
        let w = Lulesh::default();
        assert_eq!(w.name(), "LULESH");
        assert_eq!(w.code_segment(), "CalcMonotonicQRegionForElems");
        assert_eq!(w.target_objects(), vec!["m_delv_zeta", "m_elemBC"]);
        let module = w.build();
        for g in ["m_x", "m_y", "m_z", "qq", "ql"] {
            assert!(module.global_id(g).is_some());
        }
    }
}
