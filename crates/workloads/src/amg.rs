//! AMG2013 — algebraic multigrid solver for unstructured-grid linear systems
//! (Table I; Henson & Yang, cited as \[22\] in the paper).
//!
//! The paper uses a compact LLNL version with GMRES(10) preconditioned by
//! AMG, on the anisotropic input matrix, evaluating `hypre_GMRESSolve` with
//! target data objects `ipiv` (the integer pivot array of the small dense
//! solve inside GMRES) and `A` (the sparse-matrix values).
//!
//! The kernel is GMRES(restart) on the reduced anisotropic 5-point Laplacian,
//! preconditioned by weighted-Jacobi sweeps (standing in for the AMG V-cycle
//! — both are error-attenuating stationary preconditioners, which is what
//! matters for algorithm-level masking).  The least-squares problem in the
//! Krylov basis is solved by Gaussian elimination with partial pivoting,
//! which is where `ipiv` participates: a corrupted pivot index immediately
//! scrambles the small solve or faults, giving `ipiv` its low aDVF.

use crate::linalg::{random_vector, CsrMatrix};
use crate::spec::{Acceptance, Workload};
use moard_ir::prelude::*;
use moard_ir::verify::assert_verified;

/// Problem configuration for the AMG/GMRES kernel.
#[derive(Debug, Clone, Copy)]
pub struct AmgConfig {
    /// Grid extent in x (matrix dimension is nx*ny).
    pub nx: usize,
    /// Grid extent in y.
    pub ny: usize,
    /// Anisotropy factor of the Laplacian.
    pub epsilon: f64,
    /// Krylov subspace dimension (GMRES restart length).
    pub restart: usize,
    /// Jacobi pre-smoothing sweeps used as the preconditioner.
    pub precond_sweeps: usize,
    /// RNG seed for the right-hand side.
    pub seed: u64,
}

impl Default for AmgConfig {
    fn default() -> Self {
        AmgConfig {
            nx: 6,
            ny: 5,
            epsilon: 0.1,
            restart: 10,
            precond_sweeps: 3,
            seed: 0x5E_EDA3,
        }
    }
}

/// The AMG workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Amg {
    /// Problem configuration.
    pub config: AmgConfig,
}

impl Amg {
    /// AMG with an explicit configuration.
    pub fn with_config(config: AmgConfig) -> Self {
        Amg { config }
    }

    /// The generated anisotropic matrix.
    pub fn matrix(&self) -> CsrMatrix {
        CsrMatrix::anisotropic_laplacian(self.config.nx, self.config.ny, self.config.epsilon)
    }
}

impl Workload for Amg {
    fn name(&self) -> &'static str {
        "AMG"
    }

    fn description(&self) -> &'static str {
        "Algebraic multigrid-preconditioned GMRES on an anisotropic grid (compact)"
    }

    fn code_segment(&self) -> &'static str {
        "hypre_GMRESSolve"
    }

    fn target_objects(&self) -> Vec<&'static str> {
        vec!["ipiv", "A"]
    }

    fn output_objects(&self) -> Vec<&'static str> {
        vec!["x", "final_res"]
    }

    fn acceptance(&self) -> Acceptance {
        // GMRES is judged by how well it reduces the residual; small
        // perturbations of the computed update are acceptable.
        Acceptance::MaxRelDiff(1e-3)
    }

    fn max_steps(&self) -> u64 {
        4_000_000
    }

    fn build(&self) -> Module {
        let cfg = self.config;
        let mat = self.matrix();
        let n = mat.n;
        let ni = n as i64;
        let m_dim = cfg.restart;
        let mi = m_dim as i64;
        let rhs = random_vector(n, 0.5, 1.5, cfg.seed);

        let mut module = Module::new("amg");
        let a = module.add_global(Global::from_f64("A", &mat.a));
        let colidx = module.add_global(Global::from_i64("colidx", &mat.colidx));
        let rowstr = module.add_global(Global::from_i64("rowstr", &mat.rowstr));
        let diag_idx: Vec<i64> = (0..n)
            .map(|i| {
                (mat.rowstr[i]..mat.rowstr[i + 1])
                    .find(|&k| mat.colidx[k as usize] as usize == i)
                    .unwrap()
            })
            .collect();
        let diag = module.add_global(Global::from_i64("diag_idx", &diag_idx));
        let b = module.add_global(Global::from_f64("b", &rhs));
        let x = module.add_global(Global::zeroed("x", Type::F64, n as u64));
        // Krylov basis V: (restart+1) x n, row-major.
        let v = module.add_global(Global::zeroed("V", Type::F64, ((m_dim + 1) * n) as u64));
        // Hessenberg H: (restart+1) x restart, row-major.
        let h = module.add_global(Global::zeroed("H", Type::F64, ((m_dim + 1) * m_dim) as u64));
        let g_vec = module.add_global(Global::zeroed("g", Type::F64, (m_dim + 1) as u64));
        let y_vec = module.add_global(Global::zeroed("y", Type::F64, m_dim as u64));
        let ipiv = module.add_global(Global::zeroed("ipiv", Type::I64, m_dim as u64));
        let w = module.add_global(Global::zeroed("w", Type::F64, n as u64));
        let scratch = module.add_global(Global::zeroed("scratch", Type::F64, n as u64));
        let r0 = module.add_global(Global::zeroed("r0", Type::F64, n as u64));
        let final_res = module.add_global(Global::zeroed("final_res", Type::F64, 1));

        // matvec(dst, src): dst = A * src (CSR).
        let mut mv = FunctionBuilder::new("matvec", &[Type::Ptr, Type::Ptr], None);
        {
            let dst = mv.param(0);
            let src = mv.param(1);
            mv.for_loop(Operand::const_i64(0), Operand::const_i64(ni), |f, row| {
                let sum = f.alloc_reg(Type::F64);
                f.mov(sum, Operand::const_f64(0.0));
                let start = f.load_elem(Type::I64, rowstr, Operand::Reg(row));
                let rp1 = f.add(Operand::Reg(row), Operand::const_i64(1));
                let end = f.load_elem(Type::I64, rowstr, Operand::Reg(rp1));
                f.for_loop(Operand::Reg(start), Operand::Reg(end), |f, k| {
                    let col = f.load_elem(Type::I64, colidx, Operand::Reg(k));
                    let av = f.load_elem(Type::F64, a, Operand::Reg(k));
                    let sa = f.elem_addr(Type::F64, Operand::Reg(src), Operand::Reg(col));
                    let sv = f.load(Type::F64, Operand::Reg(sa));
                    let p = f.fmul(Operand::Reg(av), Operand::Reg(sv));
                    let s = f.fadd(Operand::Reg(sum), Operand::Reg(p));
                    f.mov(sum, Operand::Reg(s));
                });
                let da = f.elem_addr(Type::F64, Operand::Reg(dst), Operand::Reg(row));
                f.store(Type::F64, Operand::Reg(sum), Operand::Reg(da));
            });
            mv.ret(None);
        }
        let matvec = module.add_function(mv.finish());

        // precond(dst, src): weighted-Jacobi sweeps approximating the AMG
        // V-cycle: dst = 0; repeat: dst += 0.7 * (src - A dst) / diag.
        // `scratch` holds A*dst so the sweep is a true Jacobi update even
        // when `dst` aliases another working vector of the caller.
        let mut pc = FunctionBuilder::new("amg_precond", &[Type::Ptr, Type::Ptr], None);
        {
            let dst = pc.param(0);
            let src = pc.param(1);
            pc.for_loop(Operand::const_i64(0), Operand::const_i64(ni), |f, i| {
                let da = f.elem_addr(Type::F64, Operand::Reg(dst), Operand::Reg(i));
                f.store(Type::F64, Operand::const_f64(0.0), Operand::Reg(da));
            });
            for _ in 0..cfg.precond_sweeps {
                pc.call(
                    matvec,
                    &[Operand::Global(scratch), Operand::Reg(pc.param(0))],
                    None,
                );
                pc.for_loop(Operand::const_i64(0), Operand::const_i64(ni), |f, i| {
                    let sa = f.elem_addr(Type::F64, Operand::Reg(src), Operand::Reg(i));
                    let sv = f.load(Type::F64, Operand::Reg(sa));
                    let wv = f.load_elem(Type::F64, scratch, Operand::Reg(i));
                    let resid = f.fsub(Operand::Reg(sv), Operand::Reg(wv));
                    let dk = f.load_elem(Type::I64, diag, Operand::Reg(i));
                    let dv = f.load_elem(Type::F64, a, Operand::Reg(dk));
                    let scaled = f.fdiv(Operand::Reg(resid), Operand::Reg(dv));
                    let relax = f.fmul(Operand::Reg(scaled), Operand::const_f64(0.7));
                    let da = f.elem_addr(Type::F64, Operand::Reg(dst), Operand::Reg(i));
                    let cur = f.load(Type::F64, Operand::Reg(da));
                    let nv = f.fadd(Operand::Reg(cur), Operand::Reg(relax));
                    f.store(Type::F64, Operand::Reg(nv), Operand::Reg(da));
                });
            }
            pc.ret(None);
        }
        let precond = module.add_function(pc.finish());

        // main: one GMRES(m) cycle with MGS Arnoldi and a pivoted dense solve.
        let mut f = FunctionBuilder::new("main", &[], Some(Type::F64));
        // r0 = M^{-1} b  (x0 = 0), beta = ||r0||, V[0] = r0 / beta.
        f.call(precond, &[Operand::Global(r0), Operand::Global(b)], None);
        let beta_sq = f.alloc_reg(Type::F64);
        f.mov(beta_sq, Operand::const_f64(0.0));
        f.for_loop(Operand::const_i64(0), Operand::const_i64(ni), |f, i| {
            let rv = f.load_elem(Type::F64, r0, Operand::Reg(i));
            let sq = f.fmul(Operand::Reg(rv), Operand::Reg(rv));
            let s = f.fadd(Operand::Reg(beta_sq), Operand::Reg(sq));
            f.mov(beta_sq, Operand::Reg(s));
        });
        let beta = f.sqrt(Operand::Reg(beta_sq));
        f.for_loop(Operand::const_i64(0), Operand::const_i64(ni), |f, i| {
            let rv = f.load_elem(Type::F64, r0, Operand::Reg(i));
            let nv = f.fdiv(Operand::Reg(rv), Operand::Reg(beta));
            f.store_elem(Type::F64, v, Operand::Reg(i), Operand::Reg(nv));
        });
        f.store_elem(Type::F64, g_vec, Operand::const_i64(0), Operand::Reg(beta));

        // Arnoldi: for j in 0..m: w = M^{-1} A V[j]; orthogonalize; V[j+1].
        f.for_loop(Operand::const_i64(0), Operand::const_i64(mi), |f, j| {
            // w = A * V[j] (use r0 as scratch for V[j] base address math).
            let vj_off = f.mul(Operand::Reg(j), Operand::const_i64(ni));
            let vj_addr = f.elem_addr(Type::F64, Operand::Global(v), Operand::Reg(vj_off));
            f.call(matvec, &[Operand::Global(r0), Operand::Reg(vj_addr)], None);
            f.call(precond, &[Operand::Global(w), Operand::Global(r0)], None);
            // Modified Gram-Schmidt against V[0..=j].
            let jp1 = f.add(Operand::Reg(j), Operand::const_i64(1));
            f.for_loop(Operand::const_i64(0), Operand::Reg(jp1), |f, row| {
                let dotp = f.alloc_reg(Type::F64);
                f.mov(dotp, Operand::const_f64(0.0));
                let off = f.mul(Operand::Reg(row), Operand::const_i64(ni));
                f.for_loop(Operand::const_i64(0), Operand::const_i64(ni), |f, i| {
                    let vi = f.add(Operand::Reg(off), Operand::Reg(i));
                    let vv = f.load_elem(Type::F64, v, Operand::Reg(vi));
                    let wv = f.load_elem(Type::F64, w, Operand::Reg(i));
                    let p = f.fmul(Operand::Reg(vv), Operand::Reg(wv));
                    let s = f.fadd(Operand::Reg(dotp), Operand::Reg(p));
                    f.mov(dotp, Operand::Reg(s));
                });
                // H[row][j] = dot; w -= dot * V[row]
                let hidx = f.mul(Operand::Reg(row), Operand::const_i64(mi));
                let hidx = f.add(Operand::Reg(hidx), Operand::Reg(j));
                f.store_elem(Type::F64, h, Operand::Reg(hidx), Operand::Reg(dotp));
                f.for_loop(Operand::const_i64(0), Operand::const_i64(ni), |f, i| {
                    let vi = f.add(Operand::Reg(off), Operand::Reg(i));
                    let vv = f.load_elem(Type::F64, v, Operand::Reg(vi));
                    let wv = f.load_elem(Type::F64, w, Operand::Reg(i));
                    let sub = f.fmul(Operand::Reg(dotp), Operand::Reg(vv));
                    let nw = f.fsub(Operand::Reg(wv), Operand::Reg(sub));
                    f.store_elem(Type::F64, w, Operand::Reg(i), Operand::Reg(nw));
                });
            });
            // H[j+1][j] = ||w||; V[j+1] = w / ||w||.
            let nrm_sq = f.alloc_reg(Type::F64);
            f.mov(nrm_sq, Operand::const_f64(0.0));
            f.for_loop(Operand::const_i64(0), Operand::const_i64(ni), |f, i| {
                let wv = f.load_elem(Type::F64, w, Operand::Reg(i));
                let sq = f.fmul(Operand::Reg(wv), Operand::Reg(wv));
                let s = f.fadd(Operand::Reg(nrm_sq), Operand::Reg(sq));
                f.mov(nrm_sq, Operand::Reg(s));
            });
            let nrm = f.sqrt(Operand::Reg(nrm_sq));
            let hidx = f.mul(Operand::Reg(jp1), Operand::const_i64(mi));
            let hidx = f.add(Operand::Reg(hidx), Operand::Reg(j));
            f.store_elem(Type::F64, h, Operand::Reg(hidx), Operand::Reg(nrm));
            let voff = f.mul(Operand::Reg(jp1), Operand::const_i64(ni));
            f.for_loop(Operand::const_i64(0), Operand::const_i64(ni), |f, i| {
                let wv = f.load_elem(Type::F64, w, Operand::Reg(i));
                let nv = f.fdiv(Operand::Reg(wv), Operand::Reg(nrm));
                let vi = f.add(Operand::Reg(voff), Operand::Reg(i));
                f.store_elem(Type::F64, v, Operand::Reg(vi), Operand::Reg(nv));
            });
            // g[j+1] = 0 (only g[0] = beta is non-zero before the solve).
            f.store_elem(Type::F64, g_vec, Operand::Reg(jp1), Operand::const_f64(0.0));
        });

        // Solve the (m x m) least-squares problem approximately by Gaussian
        // elimination with partial pivoting on the square part of H
        // (H[0..m][0..m]) against g[0..m], producing y and the pivot array
        // ipiv — the hypre_GMRESSolve step where ipiv participates.
        f.for_loop(Operand::const_i64(0), Operand::const_i64(mi), |f, col| {
            // Find the pivot row with the largest |H[row][col]|, row >= col.
            let best = f.alloc_reg(Type::I64);
            let best_val = f.alloc_reg(Type::F64);
            f.mov(best, Operand::Reg(col));
            let hcc = f.mul(Operand::Reg(col), Operand::const_i64(mi));
            let hcc = f.add(Operand::Reg(hcc), Operand::Reg(col));
            let hv = f.load_elem(Type::F64, h, Operand::Reg(hcc));
            let habs = f.fabs(Operand::Reg(hv));
            f.mov(best_val, Operand::Reg(habs));
            let cp1 = f.add(Operand::Reg(col), Operand::const_i64(1));
            f.for_loop(Operand::Reg(cp1), Operand::const_i64(mi), |f, row| {
                let hrc = f.mul(Operand::Reg(row), Operand::const_i64(mi));
                let hrc = f.add(Operand::Reg(hrc), Operand::Reg(col));
                let hv = f.load_elem(Type::F64, h, Operand::Reg(hrc));
                let habs = f.fabs(Operand::Reg(hv));
                let better = f.cmp(CmpPred::FOgt, Operand::Reg(habs), Operand::Reg(best_val));
                f.if_then(Operand::Reg(better), |f| {
                    f.mov(best, Operand::Reg(row));
                    f.mov(best_val, Operand::Reg(habs));
                });
            });
            f.store_elem(Type::I64, ipiv, Operand::Reg(col), Operand::Reg(best));
            // Swap rows col and ipiv[col] of H and entries of g.
            let piv = f.load_elem(Type::I64, ipiv, Operand::Reg(col));
            f.for_loop(Operand::const_i64(0), Operand::const_i64(mi), |f, cc| {
                let a_idx = f.mul(Operand::Reg(col), Operand::const_i64(mi));
                let a_idx = f.add(Operand::Reg(a_idx), Operand::Reg(cc));
                let b_idx = f.mul(Operand::Reg(piv), Operand::const_i64(mi));
                let b_idx = f.add(Operand::Reg(b_idx), Operand::Reg(cc));
                let av = f.load_elem(Type::F64, h, Operand::Reg(a_idx));
                let bv = f.load_elem(Type::F64, h, Operand::Reg(b_idx));
                f.store_elem(Type::F64, h, Operand::Reg(a_idx), Operand::Reg(bv));
                f.store_elem(Type::F64, h, Operand::Reg(b_idx), Operand::Reg(av));
            });
            let ga = f.load_elem(Type::F64, g_vec, Operand::Reg(col));
            let gb = f.load_elem(Type::F64, g_vec, Operand::Reg(piv));
            f.store_elem(Type::F64, g_vec, Operand::Reg(col), Operand::Reg(gb));
            f.store_elem(Type::F64, g_vec, Operand::Reg(piv), Operand::Reg(ga));
            // Eliminate below the pivot.
            f.for_loop(Operand::Reg(cp1), Operand::const_i64(mi), |f, row| {
                let hrc = f.mul(Operand::Reg(row), Operand::const_i64(mi));
                let hrc = f.add(Operand::Reg(hrc), Operand::Reg(col));
                let num = f.load_elem(Type::F64, h, Operand::Reg(hrc));
                let hcc = f.mul(Operand::Reg(col), Operand::const_i64(mi));
                let hcc = f.add(Operand::Reg(hcc), Operand::Reg(col));
                let den = f.load_elem(Type::F64, h, Operand::Reg(hcc));
                let fac = f.fdiv(Operand::Reg(num), Operand::Reg(den));
                f.for_loop(Operand::Reg(col), Operand::const_i64(mi), |f, cc| {
                    let a_idx = f.mul(Operand::Reg(row), Operand::const_i64(mi));
                    let a_idx = f.add(Operand::Reg(a_idx), Operand::Reg(cc));
                    let p_idx = f.mul(Operand::Reg(col), Operand::const_i64(mi));
                    let p_idx = f.add(Operand::Reg(p_idx), Operand::Reg(cc));
                    let av = f.load_elem(Type::F64, h, Operand::Reg(a_idx));
                    let pv = f.load_elem(Type::F64, h, Operand::Reg(p_idx));
                    let sub = f.fmul(Operand::Reg(fac), Operand::Reg(pv));
                    let nv = f.fsub(Operand::Reg(av), Operand::Reg(sub));
                    f.store_elem(Type::F64, h, Operand::Reg(a_idx), Operand::Reg(nv));
                });
                let gr = f.load_elem(Type::F64, g_vec, Operand::Reg(row));
                let gc = f.load_elem(Type::F64, g_vec, Operand::Reg(col));
                let sub = f.fmul(Operand::Reg(fac), Operand::Reg(gc));
                let ng = f.fsub(Operand::Reg(gr), Operand::Reg(sub));
                f.store_elem(Type::F64, g_vec, Operand::Reg(row), Operand::Reg(ng));
            });
        });
        // Back substitution for y.
        f.for_loop(Operand::const_i64(0), Operand::const_i64(mi), |f, t| {
            let mm1 = f.sub(Operand::const_i64(mi - 1), Operand::Reg(t));
            let acc = f.alloc_reg(Type::F64);
            let gv = f.load_elem(Type::F64, g_vec, Operand::Reg(mm1));
            f.mov(acc, Operand::Reg(gv));
            let rp1 = f.add(Operand::Reg(mm1), Operand::const_i64(1));
            f.for_loop(Operand::Reg(rp1), Operand::const_i64(mi), |f, cc| {
                let hidx = f.mul(Operand::Reg(mm1), Operand::const_i64(mi));
                let hidx = f.add(Operand::Reg(hidx), Operand::Reg(cc));
                let hv = f.load_elem(Type::F64, h, Operand::Reg(hidx));
                let yv = f.load_elem(Type::F64, y_vec, Operand::Reg(cc));
                let sub = f.fmul(Operand::Reg(hv), Operand::Reg(yv));
                let na = f.fsub(Operand::Reg(acc), Operand::Reg(sub));
                f.mov(acc, Operand::Reg(na));
            });
            let hdd = f.mul(Operand::Reg(mm1), Operand::const_i64(mi));
            let hdd = f.add(Operand::Reg(hdd), Operand::Reg(mm1));
            let dv = f.load_elem(Type::F64, h, Operand::Reg(hdd));
            let yv = f.fdiv(Operand::Reg(acc), Operand::Reg(dv));
            f.store_elem(Type::F64, y_vec, Operand::Reg(mm1), Operand::Reg(yv));
        });
        // x = V^T[0..m] y.
        f.for_loop(Operand::const_i64(0), Operand::const_i64(ni), |f, i| {
            let acc = f.alloc_reg(Type::F64);
            f.mov(acc, Operand::const_f64(0.0));
            f.for_loop(Operand::const_i64(0), Operand::const_i64(mi), |f, j| {
                let yv = f.load_elem(Type::F64, y_vec, Operand::Reg(j));
                let voff = f.mul(Operand::Reg(j), Operand::const_i64(ni));
                let vi = f.add(Operand::Reg(voff), Operand::Reg(i));
                let vv = f.load_elem(Type::F64, v, Operand::Reg(vi));
                let p = f.fmul(Operand::Reg(yv), Operand::Reg(vv));
                let s = f.fadd(Operand::Reg(acc), Operand::Reg(p));
                f.mov(acc, Operand::Reg(s));
            });
            f.store_elem(Type::F64, x, Operand::Reg(i), Operand::Reg(acc));
        });
        // final_res = || b - A x || (true residual).
        f.call(matvec, &[Operand::Global(w), Operand::Global(x)], None);
        let res_sq = f.alloc_reg(Type::F64);
        f.mov(res_sq, Operand::const_f64(0.0));
        f.for_loop(Operand::const_i64(0), Operand::const_i64(ni), |f, i| {
            let bv = f.load_elem(Type::F64, b, Operand::Reg(i));
            let wv = f.load_elem(Type::F64, w, Operand::Reg(i));
            let d = f.fsub(Operand::Reg(bv), Operand::Reg(wv));
            let sq = f.fmul(Operand::Reg(d), Operand::Reg(d));
            let s = f.fadd(Operand::Reg(res_sq), Operand::Reg(sq));
            f.mov(res_sq, Operand::Reg(s));
        });
        let res = f.sqrt(Operand::Reg(res_sq));
        f.store_elem(
            Type::F64,
            final_res,
            Operand::const_i64(0),
            Operand::Reg(res),
        );
        f.ret(Some(Operand::Reg(res)));

        module.add_function(f.finish());
        assert_verified(&module);
        module
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::golden_run;

    #[test]
    fn gmres_reduces_the_residual() {
        let amg = Amg::default();
        let outcome = golden_run(&amg).unwrap();
        assert!(
            outcome.status.is_completed(),
            "status: {:?}",
            outcome.status
        );
        let b = random_vector(amg.matrix().n, 0.5, 1.5, amg.config.seed);
        let b_norm = crate::linalg::norm2(&b);
        let res = outcome.return_f64();
        assert!(
            res < 0.5 * b_norm,
            "GMRES should reduce the residual: {res} vs ||b|| = {b_norm}"
        );
    }

    #[test]
    fn solution_approximately_satisfies_the_system() {
        let amg = Amg::default();
        let outcome = golden_run(&amg).unwrap();
        let mat = amg.matrix();
        let x = outcome.global_f64("x");
        let ax = mat.matvec(&x);
        let b = random_vector(mat.n, 0.5, 1.5, amg.config.seed);
        let resid: Vec<f64> = ax.iter().zip(b.iter()).map(|(p, q)| q - p).collect();
        let reported = outcome.global_f64("final_res")[0];
        assert!((crate::linalg::norm2(&resid) - reported).abs() < 1e-9);
    }

    #[test]
    fn pivot_array_is_populated() {
        let amg = Amg::default();
        let outcome = golden_run(&amg).unwrap();
        let ipiv = &outcome.globals["ipiv"];
        assert_eq!(ipiv.len(), amg.config.restart);
        // Every pivot index is within range (>= its column index).
        for (col, p) in ipiv.iter().enumerate() {
            let p = p.as_i64();
            assert!(p >= col as i64 && (p as usize) < amg.config.restart);
        }
    }

    #[test]
    fn table1_metadata() {
        let amg = Amg::default();
        assert_eq!(amg.name(), "AMG");
        assert_eq!(amg.code_segment(), "hypre_GMRESSolve");
        assert_eq!(amg.target_objects(), vec!["ipiv", "A"]);
    }
}
