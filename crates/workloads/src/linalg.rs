//! Deterministic input generation shared by the workloads: sparse matrices
//! in CSR form, dense matrices, and reproducible pseudo-random sequences.
//!
//! All inputs are generated with fixed seeds so that every golden run, trace,
//! and fault-injection campaign across the whole repository sees exactly the
//! same data — a prerequisite for the aDVF analysis, which compares corrupted
//! runs bit-by-bit against the golden run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A sparse matrix in compressed-sparse-row form, mirroring the
/// `a` / `colidx` / `rowstr` triplet of the NPB CG benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    /// Matrix dimension (square).
    pub n: usize,
    /// Row start offsets, length `n + 1`.
    pub rowstr: Vec<i64>,
    /// Column indices of the stored entries.
    pub colidx: Vec<i64>,
    /// Stored entry values.
    pub a: Vec<f64>,
}

impl CsrMatrix {
    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.a.len()
    }

    /// Dense matrix-vector product (reference implementation used by tests).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        for (i, yi) in y.iter_mut().enumerate() {
            let (s, e) = (self.rowstr[i] as usize, self.rowstr[i + 1] as usize);
            for k in s..e {
                *yi += self.a[k] * x[self.colidx[k] as usize];
            }
        }
        y
    }

    /// Generate a symmetric positive-definite-ish sparse matrix: strong
    /// diagonal plus `extra_per_row` random off-diagonal entries per row.
    pub fn diagonally_dominant(n: usize, extra_per_row: usize, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rowstr = Vec::with_capacity(n + 1);
        let mut colidx = Vec::new();
        let mut a = Vec::new();
        rowstr.push(0);
        for i in 0..n {
            // Collect distinct off-diagonal columns.
            let mut cols = vec![i];
            while cols.len() < extra_per_row + 1 {
                let c = rng.gen_range(0..n);
                if !cols.contains(&c) {
                    cols.push(c);
                }
            }
            cols.sort_unstable();
            for c in cols {
                let v = if c == i {
                    // Diagonal dominance keeps CG and GMRES well conditioned.
                    (extra_per_row as f64) + 2.0 + rng.gen_range(0.0..1.0)
                } else {
                    -rng.gen_range(0.1..1.0)
                };
                colidx.push(c as i64);
                a.push(v);
            }
            rowstr.push(colidx.len() as i64);
        }
        CsrMatrix {
            n,
            rowstr,
            colidx,
            a,
        }
    }

    /// Generate the 5-point anisotropic Laplacian on an `nx` x `ny` grid —
    /// the "aniso" input problem of AMG2013, shrunk to laptop scale.
    pub fn anisotropic_laplacian(nx: usize, ny: usize, epsilon: f64) -> CsrMatrix {
        let n = nx * ny;
        let idx = |i: usize, j: usize| (j * nx + i) as i64;
        let mut rowstr = Vec::with_capacity(n + 1);
        let mut colidx = Vec::new();
        let mut a = Vec::new();
        rowstr.push(0);
        for j in 0..ny {
            for i in 0..nx {
                let mut push = |c: i64, v: f64| {
                    colidx.push(c);
                    a.push(v);
                };
                if j > 0 {
                    push(idx(i, j - 1), -epsilon);
                }
                if i > 0 {
                    push(idx(i - 1, j), -1.0);
                }
                push(idx(i, j), 2.0 + 2.0 * epsilon);
                if i + 1 < nx {
                    push(idx(i + 1, j), -1.0);
                }
                if j + 1 < ny {
                    push(idx(i, j + 1), -epsilon);
                }
                rowstr.push(colidx.len() as i64);
            }
        }
        CsrMatrix {
            n,
            rowstr,
            colidx,
            a,
        }
    }
}

/// Deterministic pseudo-random vector in `[lo, hi)`.
pub fn random_vector(n: usize, lo: f64, hi: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Deterministic pseudo-random dense matrix (row-major `rows x cols`).
pub fn random_matrix(rows: usize, cols: usize, seed: u64) -> Vec<f64> {
    random_vector(rows * cols, -1.0, 1.0, seed)
}

/// Reference dense matrix multiplication, row-major (used by tests and by the
/// ABFT case study to cross-check the IR kernels).
pub fn matmul_ref(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut c = vec![0.0; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
    c
}

/// Euclidean norm.
pub fn norm2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_generation_is_deterministic_and_well_formed() {
        let m1 = CsrMatrix::diagonally_dominant(32, 4, 7);
        let m2 = CsrMatrix::diagonally_dominant(32, 4, 7);
        assert_eq!(m1, m2);
        assert_eq!(m1.rowstr.len(), 33);
        assert_eq!(m1.nnz(), 32 * 5);
        // Every column index in range, every row has its diagonal.
        for i in 0..m1.n {
            let (s, e) = (m1.rowstr[i] as usize, m1.rowstr[i + 1] as usize);
            assert!(m1.colidx[s..e].iter().any(|&c| c as usize == i));
            assert!(m1.colidx[s..e].iter().all(|&c| (c as usize) < m1.n));
        }
    }

    #[test]
    fn diagonally_dominant_rows_dominate() {
        let m = CsrMatrix::diagonally_dominant(16, 3, 1);
        for i in 0..m.n {
            let (s, e) = (m.rowstr[i] as usize, m.rowstr[i + 1] as usize);
            let mut diag = 0.0;
            let mut off = 0.0;
            for k in s..e {
                if m.colidx[k] as usize == i {
                    diag = m.a[k];
                } else {
                    off += m.a[k].abs();
                }
            }
            assert!(diag > off, "row {i} not diagonally dominant");
        }
    }

    #[test]
    fn laplacian_structure() {
        let m = CsrMatrix::anisotropic_laplacian(4, 3, 0.1);
        assert_eq!(m.n, 12);
        assert_eq!(m.rowstr.len(), 13);
        // Interior point has 5 entries, corner has 3.
        let row_len = |i: usize| (m.rowstr[i + 1] - m.rowstr[i]) as usize;
        assert_eq!(row_len(0), 3);
        assert_eq!(row_len(5), 5);
        // Symmetric: A x = A^T x for a test vector.
        let x = random_vector(m.n, 0.0, 1.0, 3);
        let y = m.matvec(&x);
        assert_eq!(y.len(), 12);
    }

    #[test]
    fn matvec_matches_dense_reference() {
        let m = CsrMatrix::diagonally_dominant(8, 2, 5);
        let x = random_vector(8, -1.0, 1.0, 11);
        // Build the dense form and multiply.
        let mut dense = vec![0.0; 64];
        for i in 0..8 {
            for k in m.rowstr[i] as usize..m.rowstr[i + 1] as usize {
                dense[i * 8 + m.colidx[k] as usize] += m.a[k];
            }
        }
        let mut want = [0.0; 8];
        for i in 0..8 {
            for j in 0..8 {
                want[i] += dense[i * 8 + j] * x[j];
            }
        }
        let got = m.matvec(&x);
        for (a, b) in want.iter().zip(got.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn matmul_ref_identity() {
        let n = 4;
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let b = random_matrix(n, n, 2);
        let c = matmul_ref(&eye, &b, n);
        for (x, y) in c.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn vector_helpers() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!((dot(&[1.0, 2.0], &[3.0, 4.0]) - 11.0).abs() < 1e-12);
        let v1 = random_vector(10, 0.0, 1.0, 42);
        let v2 = random_vector(10, 0.0, 1.0, 42);
        assert_eq!(v1, v2);
        assert!(v1.iter().all(|&x| (0.0..1.0).contains(&x)));
    }
}
