//! # moard-workloads
//!
//! The benchmark substrate of the MOARD reproduction: reduced-scale Rust/IR
//! re-implementations of every workload the paper evaluates (Table I) plus
//! the two case-study applications of §VI.
//!
//! * NPB kernels: [`npb::Cg`], [`npb::Mg`], [`npb::Ft`], [`npb::Bt`],
//!   [`npb::Sp`], [`npb::Lu`];
//! * proxy / production applications: [`lulesh::Lulesh`], [`amg::Amg`];
//! * case-study applications: [`mm::MatMul`] (GEMM, ABFT baseline) and
//!   [`pf::Pf`] (Rodinia Particle Filter).
//!
//! Every workload implements [`spec::Workload`]: it builds an IR [`Module`]
//! with named global data objects, declares which of them are the paper's
//! *target data objects*, which are the *outputs* that define the
//! application outcome, and how outcomes are judged acceptable
//! (algorithm-level fidelity).
//!
//! [`Module`]: moard_ir::Module

pub mod amg;
pub mod linalg;
pub mod lulesh;
pub mod mm;
pub mod npb;
pub mod pf;
pub mod registry;
pub mod spec;

pub use amg::{Amg, AmgConfig};
pub use lulesh::{Lulesh, LuleshConfig};
pub use mm::{MatMul, MmConfig};
pub use pf::{Pf, PfConfig};
pub use registry::{
    builtin_registry, Registry, WorkloadDescriptor, WorkloadFactory, WorkloadRegistry,
};
pub use spec::{classify_by_outputs, golden_run, Acceptance, Workload, WorkloadInfo};

/// All eight benchmark workloads of Table I, in the order of the paper's
/// figures (CG, MG, FT, BT, SP, LU, LULESH, AMG).
pub fn table1_workloads() -> Vec<Box<dyn Workload>> {
    builtin_registry().table1()
}

/// Look a workload up by (case-insensitive) name or alias in the built-in
/// registry; includes the case-study workloads MM and PF in addition to the
/// Table I benchmarks.  External workload families (e.g. the ABFT variants)
/// live in their own [`Registry`] compositions — see `moard_abft::register`.
pub fn workload_by_name(name: &str) -> Option<Box<dyn Workload>> {
    builtin_registry().create(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_the_eight_table1_benchmarks() {
        let all = table1_workloads();
        let names: Vec<&str> = all.iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            vec!["CG", "MG", "FT", "BT", "SP", "LU", "LULESH", "AMG"]
        );
        // 16 target data objects in total, as in the paper.
        let total_targets: usize = all.iter().map(|w| w.target_objects().len()).sum();
        assert_eq!(total_targets, 16);
    }

    #[test]
    fn every_workload_builds_a_verified_module_with_its_objects() {
        for w in table1_workloads() {
            let module = w.build();
            for target in w.target_objects() {
                assert!(
                    module.global_id(target).is_some(),
                    "{}: target object {target} missing",
                    w.name()
                );
            }
            for output in w.output_objects() {
                assert!(
                    module.global_id(output).is_some(),
                    "{}: output object {output} missing",
                    w.name()
                );
            }
        }
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert_eq!(workload_by_name("cg").unwrap().name(), "CG");
        assert_eq!(workload_by_name("LULESH").unwrap().name(), "LULESH");
        assert_eq!(workload_by_name("MatMul").unwrap().name(), "MM");
        assert!(workload_by_name("nope").is_none());
    }

    #[test]
    fn every_golden_run_completes() {
        for w in table1_workloads() {
            let outcome = golden_run(w.as_ref()).expect("vm load");
            assert!(
                outcome.status.is_completed(),
                "{} golden run failed: {:?}",
                w.name(),
                outcome.status
            );
        }
    }
}
