//! # moard-workloads
//!
//! The benchmark substrate of the MOARD reproduction: reduced-scale Rust/IR
//! re-implementations of every workload the paper evaluates (Table I) plus
//! the two case-study applications of §VI.
//!
//! * NPB kernels: [`npb::Cg`], [`npb::Mg`], [`npb::Ft`], [`npb::Bt`],
//!   [`npb::Sp`], [`npb::Lu`];
//! * proxy / production applications: [`lulesh::Lulesh`], [`amg::Amg`];
//! * case-study applications: [`mm::MatMul`] (GEMM, ABFT baseline) and
//!   [`pf::Pf`] (Rodinia Particle Filter).
//!
//! Every workload implements [`spec::Workload`]: it builds an IR [`Module`]
//! with named global data objects, declares which of them are the paper's
//! *target data objects*, which are the *outputs* that define the
//! application outcome, and how outcomes are judged acceptable
//! (algorithm-level fidelity).
//!
//! [`Module`]: moard_ir::Module

pub mod amg;
pub mod linalg;
pub mod lulesh;
pub mod mm;
pub mod npb;
pub mod pf;
pub mod spec;

pub use amg::{Amg, AmgConfig};
pub use lulesh::{Lulesh, LuleshConfig};
pub use mm::{MatMul, MmConfig};
pub use pf::{Pf, PfConfig};
pub use spec::{classify_by_outputs, golden_run, Acceptance, Workload, WorkloadInfo};

/// All eight benchmark workloads of Table I, in the order of the paper's
/// figures (CG, MG, FT, BT, SP, LU, LULESH, AMG).
pub fn table1_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(npb::Cg::default()),
        Box::new(npb::Mg::default()),
        Box::new(npb::Ft::default()),
        Box::new(npb::Bt::default()),
        Box::new(npb::Sp::default()),
        Box::new(npb::Lu::default()),
        Box::new(Lulesh::default()),
        Box::new(Amg::default()),
    ]
}

/// Look a workload up by (case-insensitive) name; includes the case-study
/// workloads MM and PF in addition to the Table I benchmarks.
pub fn workload_by_name(name: &str) -> Option<Box<dyn Workload>> {
    let lower = name.to_ascii_lowercase();
    let w: Box<dyn Workload> = match lower.as_str() {
        "cg" => Box::new(npb::Cg::default()),
        "mg" => Box::new(npb::Mg::default()),
        "ft" => Box::new(npb::Ft::default()),
        "bt" => Box::new(npb::Bt::default()),
        "sp" => Box::new(npb::Sp::default()),
        "lu" => Box::new(npb::Lu::default()),
        "lulesh" => Box::new(Lulesh::default()),
        "amg" => Box::new(Amg::default()),
        "mm" | "matmul" => Box::new(MatMul::default()),
        "pf" | "particlefilter" => Box::new(Pf::default()),
        _ => return None,
    };
    Some(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_the_eight_table1_benchmarks() {
        let all = table1_workloads();
        let names: Vec<&str> = all.iter().map(|w| w.name()).collect();
        assert_eq!(names, vec!["CG", "MG", "FT", "BT", "SP", "LU", "LULESH", "AMG"]);
        // 16 target data objects in total, as in the paper.
        let total_targets: usize = all.iter().map(|w| w.target_objects().len()).sum();
        assert_eq!(total_targets, 16);
    }

    #[test]
    fn every_workload_builds_a_verified_module_with_its_objects() {
        for w in table1_workloads() {
            let module = w.build();
            for target in w.target_objects() {
                assert!(
                    module.global_id(target).is_some(),
                    "{}: target object {target} missing",
                    w.name()
                );
            }
            for output in w.output_objects() {
                assert!(
                    module.global_id(output).is_some(),
                    "{}: output object {output} missing",
                    w.name()
                );
            }
        }
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert_eq!(workload_by_name("cg").unwrap().name(), "CG");
        assert_eq!(workload_by_name("LULESH").unwrap().name(), "LULESH");
        assert_eq!(workload_by_name("MatMul").unwrap().name(), "MM");
        assert!(workload_by_name("nope").is_none());
    }

    #[test]
    fn every_golden_run_completes() {
        for w in table1_workloads() {
            let outcome = golden_run(w.as_ref()).expect("vm load");
            assert!(
                outcome.status.is_completed(),
                "{} golden run failed: {:?}",
                w.name(),
                outcome.status
            );
        }
    }
}
