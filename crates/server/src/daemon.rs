//! The daemon itself: a TCP listener, a priority job scheduler over a
//! bounded worker pool, and the shared warm state every job benefits from.
//!
//! ## Architecture
//!
//! ```text
//!            accept loop (1 thread)
//!                 │ one thread per connection
//!                 ▼
//!   connection threads ──immediate ops──▶ response frame
//!                 │ job ops
//!                 ▼
//!   priority queue (Mutex<BinaryHeap> + Condvar)
//!                 │
//!                 ▼
//!   worker pool (`--threads` threads) ── engines run `Parallelism::Sequential`
//!                 │                       (cross-job concurrency comes from the
//!                 ▼                        pool itself; nesting pools would
//!   shared warm state                      oversubscribe the machine)
//!     · `HarnessCache` — one prepared harness per workload, ever
//!     · `ResultStore` — completed cells/tasks, shared across jobs
//!     · `MetricsRegistry` — counters + latency histograms
//! ```
//!
//! Jobs are scheduled strictly by (priority, submission order).  Every job
//! carries a [`CancelToken`]; `cancel` requests (from any connection) set
//! it, and the engines abandon the job at their next checkpoint —
//! everything already persisted to the store stays valid, so resubmitting
//! the job resumes instead of restarting.
//!
//! Shutdown is cooperative everywhere: the `shutdown` request sets the flag,
//! cancels every live job, wakes the workers (which drain and exit), and
//! unblocks the accept loop with a self-connection.  A daemon killed with
//! SIGKILL instead loses nothing but in-flight work: the store's atomic
//! writes guarantee a restart serves every completed cell as a cache hit.

use crate::metrics::MetricsRegistry;
use crate::protocol::{
    read_frame, write_json, FrameError, Priority, Request, Response, MAX_FRAME_BYTES,
};
use moard_core::{MoardError, StudyReport, ValidationReport};
use moard_inject::{
    CancelToken, HarnessCache, ObjectSelector, Parallelism, ResultStore, StudyRunner, StudySpec,
    ValidationRunner, WorkloadSelector,
};
use moard_json::{Json, ToJson};
use std::collections::{BinaryHeap, HashMap};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Daemon configuration (the `moard-daemon` flags).
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 = ephemeral).
    pub addr: String,
    /// Worker threads of the job pool (0 = one per available core).
    pub threads: usize,
    /// Result-store directory; `None` disables cross-job result caching.
    pub store: Option<PathBuf>,
    /// Trace storage backend the warm-harness cache prepares workloads
    /// with (in-memory by default; paged bounds resident trace memory).
    /// Reports are bit-identical across backends.
    pub trace_backend: moard_vm::TraceBackendSpec,
    /// Replay-engine selection of the warm-harness cache (lane-batched
    /// width 64 by default, `Off` for the sequential engine).  Verdicts are
    /// bit-identical either way.
    pub replay_batch: moard_core::ReplayBatch,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:0".into(),
            threads: 0,
            store: None,
            trace_backend: moard_vm::TraceBackendSpec::Memory,
            replay_batch: moard_core::ReplayBatch::default(),
        }
    }
}

/// The terminal state of a scheduled job.
enum JobOutcome {
    Pending,
    Done(Response),
}

/// One accepted job: its work item, cancel token, and completion cell.
struct JobState {
    id: u64,
    request: Request,
    cancel: CancelToken,
    outcome: Mutex<JobOutcome>,
    done: Condvar,
}

impl JobState {
    fn complete(&self, response: Response) {
        *self.outcome.lock().expect("job outcome poisoned") = JobOutcome::Done(response);
        self.done.notify_all();
    }

    fn wait(&self) -> Response {
        let mut outcome = self.outcome.lock().expect("job outcome poisoned");
        loop {
            match &*outcome {
                JobOutcome::Done(response) => return response.clone(),
                JobOutcome::Pending => outcome = self.done.wait(outcome).expect("job poisoned"),
            }
        }
    }
}

/// Queue entry: priority first, then FIFO within a priority.
struct QueuedJob {
    priority: Priority,
    seq: u64,
    job: Arc<JobState>,
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for QueuedJob {}
impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: higher priority wins, then lower seq.
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

/// State shared by the accept loop, connection threads, and workers.
struct Shared {
    store: Option<ResultStore>,
    harnesses: Arc<HarnessCache>,
    metrics: MetricsRegistry,
    queue: Mutex<BinaryHeap<QueuedJob>>,
    queue_ready: Condvar,
    jobs: Mutex<HashMap<u64, Arc<JobState>>>,
    next_job: AtomicU64,
    next_seq: AtomicU64,
    shutdown: AtomicBool,
}

impl Shared {
    /// Enqueue a job request, returning its state handle.
    fn submit(&self, request: Request) -> Arc<JobState> {
        let job = Arc::new(JobState {
            id: self.next_job.fetch_add(1, Ordering::Relaxed) + 1,
            request,
            cancel: CancelToken::new(),
            outcome: Mutex::new(JobOutcome::Pending),
            done: Condvar::new(),
        });
        self.jobs
            .lock()
            .expect("job table poisoned")
            .insert(job.id, job.clone());
        self.queue
            .lock()
            .expect("job queue poisoned")
            .push(QueuedJob {
                priority: job.request.priority(),
                seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
                job: job.clone(),
            });
        self.metrics.jobs_submitted.fetch_add(1, Ordering::Relaxed);
        self.queue_ready.notify_one();
        job
    }

    /// Set the shutdown flag, cancel every live job, and wake the workers.
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for job in self.jobs.lock().expect("job table poisoned").values() {
            job.cancel.cancel();
        }
        self.queue_ready.notify_all();
    }

    /// Worker loop: pop by (priority, order), execute, publish.
    fn worker_loop(&self) {
        loop {
            let entry = {
                let mut queue = self.queue.lock().expect("job queue poisoned");
                loop {
                    if let Some(entry) = queue.pop() {
                        break entry;
                    }
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    queue = self.queue_ready.wait(queue).expect("job queue poisoned");
                }
            };
            self.run_job(&entry.job);
            self.jobs
                .lock()
                .expect("job table poisoned")
                .remove(&entry.job.id);
        }
    }

    /// Execute one job end to end and publish its final response.
    fn run_job(&self, job: &JobState) {
        let op = job.request.kind();
        let started = Instant::now();
        let result = if job.cancel.is_cancelled() {
            Err(MoardError::Cancelled)
        } else {
            self.execute(job)
        };
        let ns = started.elapsed().as_nanos() as u64;
        let response = match result {
            Ok((payload, cache_hits, executed)) => {
                self.metrics.jobs_completed.fetch_add(1, Ordering::Relaxed);
                self.metrics
                    .cache_hits
                    .fetch_add(cache_hits, Ordering::Relaxed);
                self.metrics
                    .tasks_executed
                    .fetch_add(executed, Ordering::Relaxed);
                self.metrics.record(op, ns, true);
                Response::Result {
                    job: job.id,
                    op: op.to_string(),
                    cache_hits,
                    executed,
                    payload,
                }
            }
            Err(MoardError::Cancelled) => {
                self.metrics.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
                self.metrics.record(op, ns, true);
                Response::Cancelled { job: job.id }
            }
            Err(e) => {
                self.metrics.record(op, ns, false);
                Response::Error {
                    message: e.to_string(),
                }
            }
        };
        job.complete(response);
    }

    /// Run the job's engine.  Every engine runs `Parallelism::Sequential`:
    /// the worker pool provides the cross-job concurrency, and a job's
    /// result must not depend on how many neighbors it had.
    fn execute(&self, job: &JobState) -> Result<(Json, u64, u64), MoardError> {
        match &job.request {
            Request::Analyze {
                workload,
                objects,
                config,
                use_dfi,
                ..
            } => {
                let mut spec = StudySpec::default()
                    .workloads(WorkloadSelector::Named(vec![workload.clone()]))
                    .objects(if objects.is_empty() {
                        ObjectSelector::Targets
                    } else {
                        ObjectSelector::Named(objects.clone())
                    })
                    .windows(vec![config.propagation_window])
                    .strides(vec![config.site_stride])
                    .max_dfis(vec![config.max_dfi_per_object])
                    .patterns(vec![config.patterns.clone()]);
                if !use_dfi {
                    spec = spec.without_dfi();
                }
                let (report, stats) = self.study_runner(spec, &job.cancel).run_detailed()?;
                Ok((
                    report.to_json(),
                    stats.cache_hits as u64,
                    stats.executed as u64,
                ))
            }
            Request::Sweep { spec, .. } => {
                let (report, stats) = self
                    .study_runner(spec.clone(), &job.cancel)
                    .run_detailed()?;
                let _: &StudyReport = &report;
                Ok((
                    report.to_json(),
                    stats.cache_hits as u64,
                    stats.executed as u64,
                ))
            }
            Request::Validate { spec, .. } => {
                let mut runner = ValidationRunner::new(spec.clone())
                    .parallelism(Parallelism::Sequential)
                    .cancel_token(job.cancel.clone())
                    .harness_cache(self.harnesses.clone());
                if let Some(store) = &self.store {
                    runner = runner.with_store(store.clone()).resume(true);
                }
                let (report, stats) = runner.run_detailed()?;
                let _: &ValidationReport = &report;
                Ok((
                    report.to_json(),
                    stats.cache_hits as u64,
                    (stats.advf_executed + stats.rfi_executed) as u64,
                ))
            }
            Request::Minimize { spec, .. } => {
                let report = moard_inject::run_minimize_in(
                    moard_workloads::builtin_registry(),
                    &self.harnesses,
                    spec,
                    &job.cancel,
                )?;
                let cache_hits = report.cache_hits();
                let executed = report.injections;
                Ok((report.to_json(), cache_hits, executed))
            }
            other => Err(MoardError::InvalidConfig(format!(
                "`{}` is not a job request",
                other.kind()
            ))),
        }
    }

    fn study_runner(&self, spec: StudySpec, cancel: &CancelToken) -> StudyRunner {
        let mut runner = StudyRunner::new(spec)
            .parallelism(Parallelism::Sequential)
            .cancel_token(cancel.clone())
            .harness_cache(self.harnesses.clone());
        if let Some(store) = &self.store {
            runner = runner.with_store(store.clone()).resume(true);
        }
        runner
    }

    /// Answer to the `metrics` request.
    fn metrics_snapshot(&self) -> Json {
        self.metrics.to_json(
            self.store.as_ref().map(|s| s.len()),
            &self.harnesses.prepared(),
        )
    }

    /// Text exposition of the same snapshot (for dumps and CI artifacts).
    fn metrics_text(&self) -> String {
        self.metrics.to_text(
            self.store.as_ref().map(|s| s.len()),
            &self.harnesses.prepared(),
        )
    }
}

/// A running daemon, returned by [`Daemon::start`].
pub struct Daemon {
    addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Bind, spawn the worker pool and the accept loop, and return.  The
    /// daemon serves until a `shutdown` request arrives (or
    /// [`Daemon::shutdown`] is called in-process).
    pub fn start(config: DaemonConfig) -> Result<Daemon, MoardError> {
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| MoardError::io(config.addr.clone(), e))?;
        let addr = listener
            .local_addr()
            .map_err(|e| MoardError::io(config.addr.clone(), e))?;
        let store = match &config.store {
            Some(dir) => Some(ResultStore::open(dir)?),
            None => None,
        };
        let shared = Arc::new(Shared {
            store,
            harnesses: Arc::new(
                HarnessCache::with_backend(config.trace_backend.clone())
                    .with_replay_batch(config.replay_batch),
            ),
            metrics: MetricsRegistry::new(),
            queue: Mutex::new(BinaryHeap::new()),
            queue_ready: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            next_job: AtomicU64::new(0),
            next_seq: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let threads = if config.threads == 0 {
            std::thread::available_parallelism().map_or(2, |n| n.get())
        } else {
            config.threads
        };
        let workers = (0..threads)
            .map(|_| {
                let shared = shared.clone();
                std::thread::spawn(move || shared.worker_loop())
            })
            .collect();
        let accept = {
            let shared = shared.clone();
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        Ok(Daemon {
            addr,
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// The actually bound address (resolves port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Current metrics snapshot (in-process view, same document as the
    /// `metrics` request).
    pub fn metrics_json(&self) -> Json {
        self.shared.metrics_snapshot()
    }

    /// Initiate shutdown from inside the process (tests, signal handlers).
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
        // Unblock the accept loop; any error just means it is already gone.
        let _ = TcpStream::connect(self.addr);
    }

    /// Block until the daemon has fully stopped (listener closed, workers
    /// drained and joined).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Small request/response frames: Nagle would stack ~40ms of
        // delayed-ACK latency onto every exchange.
        let _ = stream.set_nodelay(true);
        shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
        let shared = shared.clone();
        std::thread::spawn(move || serve_connection(stream, shared));
    }
}

/// One connection: read frames until EOF, answering each.  Malformed JSON
/// is answered with an error frame and the connection stays usable; a
/// frame-layer violation (oversized announcement, torn frame) is answered
/// where possible and the connection closed, because the stream position
/// can no longer be trusted.
fn serve_connection(stream: TcpStream, shared: Arc<Shared>) {
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let mut writer = stream;
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => return, // clean close
            Err(FrameError::Oversized { len }) => {
                shared
                    .metrics
                    .frames_rejected
                    .fetch_add(1, Ordering::Relaxed);
                let _ = write_json(
                    &mut writer,
                    &Response::Error {
                        message: format!(
                            "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
                        ),
                    }
                    .to_json(),
                );
                return;
            }
            Err(FrameError::Io(_)) => return,
        };
        let started = Instant::now();
        let request = std::str::from_utf8(&frame)
            .map_err(|e| format!("frame is not UTF-8: {e}"))
            .and_then(|text| Json::parse(text).map_err(|e| format!("frame is not JSON: {e}")))
            .and_then(|doc| {
                use moard_json::FromJson;
                Request::from_json(&doc).map_err(|e| format!("not a valid request: {e}"))
            });
        let request = match request {
            Ok(request) => request,
            Err(message) => {
                shared.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
                if write_json(&mut writer, &Response::Error { message }.to_json()).is_err() {
                    return;
                }
                continue;
            }
        };
        if request.is_job() {
            let job = shared.submit(request);
            if write_json(&mut writer, &Response::Accepted { job: job.id }.to_json()).is_err() {
                return;
            }
            // Latency of the job itself is recorded by the worker; the
            // connection just relays the final frame when it is ready.
            let response = job.wait();
            if write_json(&mut writer, &response.to_json()).is_err() {
                return;
            }
            continue;
        }
        let (response, close) = match &request {
            Request::Ping => (Response::Pong, false),
            Request::Metrics => (
                Response::Metrics {
                    payload: shared.metrics_snapshot(),
                },
                false,
            ),
            Request::Cancel { job } => {
                let found = shared
                    .jobs
                    .lock()
                    .expect("job table poisoned")
                    .get(job)
                    .cloned();
                match found {
                    Some(job) => {
                        job.cancel.cancel();
                        (Response::Ok, false)
                    }
                    None => (
                        Response::Error {
                            message: format!("no live job with id {job}"),
                        },
                        false,
                    ),
                }
            }
            Request::Shutdown => (Response::Ok, true),
            _ => unreachable!("job requests were dispatched above"),
        };
        let ok = !matches!(response, Response::Error { .. });
        shared
            .metrics
            .record(request.kind(), started.elapsed().as_nanos() as u64, ok);
        if write_json(&mut writer, &response.to_json()).is_err() {
            return;
        }
        if close {
            shared.begin_shutdown();
            // Unblock our own accept loop.
            if let Ok(local) = writer.local_addr() {
                let _ = TcpStream::connect(local);
            }
            return;
        }
    }
}

/// Render the daemon's metrics as the Prometheus-style text format (the
/// `moard-daemon --dump-metrics` / CI artifact path goes through this).
pub fn metrics_text(daemon: &Daemon) -> String {
    daemon.shared.metrics_text()
}
