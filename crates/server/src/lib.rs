//! # moard-server
//!
//! The long-running analysis daemon of the MOARD reproduction, plus its
//! client library and load generator.
//!
//! A single cold analysis pays for workload construction, the golden run,
//! and trace indexing before the first fault is injected; a CLI process
//! pays that price on every invocation.  The daemon amortizes it: one
//! process holds a [`moard_inject::HarnessCache`] of warm workload
//! harnesses and one shared [`moard_inject::ResultStore`], accepts
//! analyze/sweep/validate jobs over a simple length-framed JSON protocol
//! ([`protocol`]), schedules them across a bounded worker pool by priority
//! ([`daemon`]), serves repeated cells straight from the store, and
//! reports per-operation latency histograms and cache counters
//! ([`metrics`]).
//!
//! ```no_run
//! use moard_server::{Client, Daemon, DaemonConfig, Priority, Request};
//! use moard_core::AnalysisConfig;
//!
//! let daemon = Daemon::start(DaemonConfig {
//!     addr: "127.0.0.1:0".into(),
//!     threads: 4,
//!     store: Some("daemon-store".into()),
//!     ..DaemonConfig::default()
//! })?;
//! let mut client = Client::connect(daemon.addr())?;
//! let (job, response) = client.submit(&Request::Analyze {
//!     workload: "mm".into(),
//!     objects: vec![],
//!     config: AnalysisConfig::default(),
//!     use_dfi: true,
//!     priority: Priority::Normal,
//! })?;
//! println!("job {job}: {}", response.kind());
//! client.shutdown()?;
//! daemon.join();
//! # Ok::<(), moard_core::MoardError>(())
//! ```

pub mod client;
pub mod daemon;
pub mod metrics;
pub mod protocol;

pub use client::Client;
pub use daemon::{metrics_text, Daemon, DaemonConfig};
pub use metrics::{LatencyHistogram, MetricsRegistry};
pub use protocol::{
    read_frame, write_frame, FrameError, Priority, Request, Response, MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
};
