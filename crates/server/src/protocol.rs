//! The daemon's wire protocol: length-framed JSON over a byte stream.
//!
//! Every message — in either direction — is one **frame**: a 4-byte
//! big-endian payload length followed by exactly that many bytes of UTF-8
//! JSON.  The framing layer enforces [`MAX_FRAME_BYTES`] so a hostile or
//! broken peer can never make the daemon allocate unboundedly, and treats a
//! clean EOF *between* frames as a normal connection close (mid-frame EOF is
//! an error).
//!
//! The JSON documents are schema-versioned exactly like the report files:
//! every request and response embeds `"protocol": `[`PROTOCOL_VERSION`], and
//! a peer speaking a different version gets a typed error, not undefined
//! behavior.  Malformed input of any kind — truncated frames, garbage bytes,
//! valid JSON of the wrong shape — is answered with a
//! [`Response::Error`] and never a panic.
//!
//! Job-carrying requests ([`Request::Analyze`], [`Request::Sweep`],
//! [`Request::Validate`], [`Request::Minimize`]) are answered with **two**
//! frames: an immediate
//! [`Response::Accepted`] carrying the job id (so the client can
//! [`Request::Cancel`] from another connection), then a final
//! [`Response::Result`] / [`Response::Cancelled`] / [`Response::Error`]
//! when the job leaves the scheduler.  Everything else is answered with a
//! single frame.

use moard_core::AnalysisConfig;
use moard_inject::{MinimizeSpec, StudySpec, ValidationSpec};
use moard_json::{FromJson, Json, JsonError, ToJson};
use std::io::{Read, Write};

/// Version embedded in (and required of) every protocol document.
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard ceiling on a single frame's payload.  Reports are small (tens of
/// kilobytes); 8 MiB leaves room for very large sweeps while bounding what
/// a broken peer can make the daemon allocate.
pub const MAX_FRAME_BYTES: usize = 8 * 1024 * 1024;

/// Errors of the framing layer itself (the JSON inside a well-formed frame
/// is handled separately, via [`Response::Error`]).
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed, or EOF arrived mid-frame.
    Io(std::io::Error),
    /// The peer announced a payload larger than [`MAX_FRAME_BYTES`].
    Oversized {
        /// The announced payload length.
        len: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O failed: {e}"),
            FrameError::Oversized { len } => write!(
                f,
                "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Read one frame.  `Ok(None)` is a clean close (EOF before any prefix
/// byte); EOF inside the prefix or payload is an I/O error.
pub fn read_frame(reader: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match reader.read(&mut prefix[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(FrameError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame length prefix",
                )))
            }
            n => filled += n,
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::Oversized { len });
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Write one frame (length prefix + payload) and flush it.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(FrameError::Oversized { len: payload.len() });
    }
    writer.write_all(&(payload.len() as u32).to_be_bytes())?;
    writer.write_all(payload)?;
    writer.flush()?;
    Ok(())
}

/// Serialize a protocol document into one frame.
pub fn write_json(writer: &mut impl Write, doc: &Json) -> Result<(), FrameError> {
    write_frame(writer, doc.to_string().as_bytes())
}

/// Scheduling priority of a submitted job.  Higher priorities always leave
/// the queue first; within a priority, submission order wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Background work (bulk sweeps).
    Low,
    /// The default.
    #[default]
    Normal,
    /// Interactive jobs that should jump the queue.
    High,
}

impl Priority {
    /// Canonical wire rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }

    /// Parse the canonical rendering back.
    pub fn parse(text: &str) -> Option<Priority> {
        match text {
            "low" => Some(Priority::Low),
            "normal" => Some(Priority::Normal),
            "high" => Some(Priority::High),
            _ => None,
        }
    }
}

/// A request frame, client → daemon.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Snapshot of the daemon's counters, histograms, and cache occupancy.
    Metrics,
    /// Cooperatively cancel a previously accepted job.
    Cancel {
        /// The job id from [`Response::Accepted`].
        job: u64,
    },
    /// Cleanly stop the daemon: outstanding jobs are cancelled at their next
    /// checkpoint, workers drain, and the listener closes.
    Shutdown,
    /// One-workload aDVF analysis (the daemon-side `moard analyze`).
    Analyze {
        /// Workload name or alias.
        workload: String,
        /// Object names; empty means the workload's declared targets.
        objects: Vec<String>,
        /// The analysis configuration.
        config: AnalysisConfig,
        /// Whether unresolved masking questions may consult DFI.
        use_dfi: bool,
        /// Queue priority.
        priority: Priority,
    },
    /// A full parameter-sweep study.
    Sweep {
        /// The study specification.
        spec: StudySpec,
        /// Queue priority.
        priority: Priority,
    },
    /// A model-validation campaign.
    Validate {
        /// The campaign specification.
        spec: ValidationSpec,
        /// Queue priority.
        priority: Priority,
    },
    /// Shrink a reproducing failure to a 1-minimal scenario spec.
    Minimize {
        /// The minimization specification.
        spec: MinimizeSpec,
        /// Queue priority.
        priority: Priority,
    },
}

impl Request {
    /// The request's wire kind (also its metrics label).
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Metrics => "metrics",
            Request::Cancel { .. } => "cancel",
            Request::Shutdown => "shutdown",
            Request::Analyze { .. } => "analyze",
            Request::Sweep { .. } => "sweep",
            Request::Validate { .. } => "validate",
            Request::Minimize { .. } => "minimize",
        }
    }

    /// True for requests that enter the job queue (and are therefore
    /// answered with an [`Response::Accepted`] frame first).
    pub fn is_job(&self) -> bool {
        matches!(
            self,
            Request::Analyze { .. }
                | Request::Sweep { .. }
                | Request::Validate { .. }
                | Request::Minimize { .. }
        )
    }

    /// The queue priority of a job request ([`Priority::Normal`] otherwise).
    pub fn priority(&self) -> Priority {
        match self {
            Request::Analyze { priority, .. }
            | Request::Sweep { priority, .. }
            | Request::Validate { priority, .. }
            | Request::Minimize { priority, .. } => *priority,
            _ => Priority::Normal,
        }
    }
}

impl ToJson for Request {
    fn to_json(&self) -> Json {
        let mut members: Vec<(&'static str, Json)> = vec![
            ("protocol", Json::from(PROTOCOL_VERSION)),
            ("kind", Json::from(self.kind())),
        ];
        match self {
            Request::Ping | Request::Metrics | Request::Shutdown => {}
            Request::Cancel { job } => members.push(("job", Json::from(*job))),
            Request::Analyze {
                workload,
                objects,
                config,
                use_dfi,
                priority,
            } => {
                members.push(("workload", Json::from(workload.as_str())));
                members.push((
                    "objects",
                    Json::array(objects.iter().map(|o| Json::from(o.as_str()))),
                ));
                members.push(("config", config.to_json()));
                members.push(("use_dfi", Json::from(*use_dfi)));
                members.push(("priority", Json::from(priority.as_str())));
            }
            Request::Sweep { spec, priority } => {
                members.push(("spec", spec.to_json()));
                members.push(("priority", Json::from(priority.as_str())));
            }
            Request::Validate { spec, priority } => {
                members.push(("spec", spec.to_json()));
                members.push(("priority", Json::from(priority.as_str())));
            }
            Request::Minimize { spec, priority } => {
                members.push(("spec", spec.to_json()));
                members.push(("priority", Json::from(priority.as_str())));
            }
        }
        Json::object(members)
    }
}

fn check_protocol(value: &Json) -> Result<(), JsonError> {
    if value.u32_field("protocol")? != PROTOCOL_VERSION {
        return Err(JsonError::WrongType {
            field: "protocol".into(),
            expected: "protocol version 1",
        });
    }
    Ok(())
}

fn priority_field(value: &Json) -> Result<Priority, JsonError> {
    match value.get("priority") {
        None => Ok(Priority::Normal),
        Some(p) => p
            .as_str()
            .and_then(Priority::parse)
            .ok_or(JsonError::WrongType {
                field: "priority".into(),
                expected: "`low`, `normal`, or `high`",
            }),
    }
}

impl FromJson for Request {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        check_protocol(value)?;
        match value.str_field("kind")? {
            "ping" => Ok(Request::Ping),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            "cancel" => Ok(Request::Cancel {
                job: value.u64_field("job")?,
            }),
            "analyze" => Ok(Request::Analyze {
                workload: value.str_field("workload")?.to_string(),
                objects: value
                    .arr_field("objects")?
                    .iter()
                    .map(|o| {
                        o.as_str().map(String::from).ok_or(JsonError::WrongType {
                            field: "objects".into(),
                            expected: "an array of object names",
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                config: AnalysisConfig::from_json(value.field("config")?)?,
                use_dfi: value
                    .field("use_dfi")?
                    .as_bool()
                    .ok_or(JsonError::WrongType {
                        field: "use_dfi".into(),
                        expected: "a boolean",
                    })?,
                priority: priority_field(value)?,
            }),
            "sweep" => Ok(Request::Sweep {
                spec: StudySpec::from_json(value.field("spec")?)?,
                priority: priority_field(value)?,
            }),
            "validate" => Ok(Request::Validate {
                spec: ValidationSpec::from_json(value.field("spec")?)?,
                priority: priority_field(value)?,
            }),
            "minimize" => Ok(Request::Minimize {
                spec: MinimizeSpec::from_json(value.field("spec")?)?,
                priority: priority_field(value)?,
            }),
            _ => Err(JsonError::WrongType {
                field: "kind".into(),
                expected: "ping|metrics|cancel|shutdown|analyze|sweep|validate|minimize",
            }),
        }
    }
}

/// A response frame, daemon → client.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Generic success (cancel delivered, shutdown initiated).
    Ok,
    /// A job request entered the queue; the final frame follows later.
    Accepted {
        /// Daemon-unique job id, usable with [`Request::Cancel`].
        job: u64,
    },
    /// A job completed.  `payload` is the job's versioned report document
    /// (a `StudyReport` for analyze/sweep, a `ValidationReport` for
    /// validate).
    Result {
        /// The job id.
        job: u64,
        /// The job kind (`analyze`, `sweep`, `validate`).
        op: String,
        /// Cells/tasks answered from the shared result store.
        cache_hits: u64,
        /// Cells/tasks actually executed for this job.
        executed: u64,
        /// The report document.
        payload: Json,
    },
    /// A job left the scheduler via cooperative cancellation.
    Cancelled {
        /// The job id.
        job: u64,
    },
    /// Snapshot answer to [`Request::Metrics`].
    Metrics {
        /// The metrics document (see `metrics::MetricsRegistry::to_json`).
        payload: Json,
    },
    /// Anything that went wrong: malformed frames, unknown workloads,
    /// degenerate specs, unknown job ids.  Always a frame, never a panic
    /// or a dropped connection (except after an oversized frame, where the
    /// stream itself can no longer be trusted).
    Error {
        /// Human-readable description (typed errors render through
        /// `MoardError`'s `Display`).
        message: String,
    },
}

impl Response {
    /// The response's wire kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Response::Pong => "pong",
            Response::Ok => "ok",
            Response::Accepted { .. } => "accepted",
            Response::Result { .. } => "result",
            Response::Cancelled { .. } => "cancelled",
            Response::Metrics { .. } => "metrics",
            Response::Error { .. } => "error",
        }
    }
}

impl ToJson for Response {
    fn to_json(&self) -> Json {
        let mut members: Vec<(&'static str, Json)> = vec![
            ("protocol", Json::from(PROTOCOL_VERSION)),
            ("kind", Json::from(self.kind())),
        ];
        match self {
            Response::Pong | Response::Ok => {}
            Response::Accepted { job } | Response::Cancelled { job } => {
                members.push(("job", Json::from(*job)))
            }
            Response::Result {
                job,
                op,
                cache_hits,
                executed,
                payload,
            } => {
                members.push(("job", Json::from(*job)));
                members.push(("op", Json::from(op.as_str())));
                members.push(("cache_hits", Json::from(*cache_hits)));
                members.push(("executed", Json::from(*executed)));
                members.push(("payload", payload.clone()));
            }
            Response::Metrics { payload } => members.push(("payload", payload.clone())),
            Response::Error { message } => members.push(("message", Json::from(message.as_str()))),
        }
        Json::object(members)
    }
}

impl FromJson for Response {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        check_protocol(value)?;
        match value.str_field("kind")? {
            "pong" => Ok(Response::Pong),
            "ok" => Ok(Response::Ok),
            "accepted" => Ok(Response::Accepted {
                job: value.u64_field("job")?,
            }),
            "cancelled" => Ok(Response::Cancelled {
                job: value.u64_field("job")?,
            }),
            "result" => Ok(Response::Result {
                job: value.u64_field("job")?,
                op: value.str_field("op")?.to_string(),
                cache_hits: value.u64_field("cache_hits")?,
                executed: value.u64_field("executed")?,
                payload: value.field("payload")?.clone(),
            }),
            "metrics" => Ok(Response::Metrics {
                payload: value.field("payload")?.clone(),
            }),
            "error" => Ok(Response::Error {
                message: value.str_field("message")?.to_string(),
            }),
            _ => Err(JsonError::WrongType {
                field: "kind".into(),
                expected: "pong|ok|accepted|result|cancelled|metrics|error",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_and_oversized_frames_are_errors_not_panics() {
        // EOF inside the prefix.
        let mut cursor: &[u8] = &[0, 0];
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Io(_))));
        // EOF inside the payload.
        let mut cursor: &[u8] = &[0, 0, 0, 9, b'x'];
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Io(_))));
        // Announced length beyond the ceiling never allocates.
        let mut cursor: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF];
        assert!(matches!(
            read_frame(&mut cursor),
            Err(FrameError::Oversized { .. })
        ));
        // And the writer refuses to produce such a frame.
        let huge = vec![0u8; MAX_FRAME_BYTES + 1];
        assert!(matches!(
            write_frame(&mut Vec::new(), &huge),
            Err(FrameError::Oversized { .. })
        ));
    }

    #[test]
    fn requests_round_trip_through_json() {
        let requests = [
            Request::Ping,
            Request::Metrics,
            Request::Shutdown,
            Request::Cancel { job: 42 },
            Request::Analyze {
                workload: "mm".into(),
                objects: vec!["C".into()],
                config: AnalysisConfig::default(),
                use_dfi: true,
                priority: Priority::High,
            },
            Request::Sweep {
                spec: StudySpec::default(),
                priority: Priority::Low,
            },
            Request::Validate {
                spec: ValidationSpec::default(),
                priority: Priority::Normal,
            },
            Request::Minimize {
                spec: MinimizeSpec::cell("mm", "C")
                    .site(3, moard_core::SiteSlot::Operand(0))
                    .pattern(moard_core::ErrorPattern { bits: vec![51] })
                    .seed(0xF1F1),
                priority: Priority::High,
            },
        ];
        for request in requests {
            let doc = Json::parse(&request.to_json().to_string()).unwrap();
            assert_eq!(Request::from_json(&doc).unwrap(), request);
        }
    }

    #[test]
    fn responses_round_trip_through_json() {
        let responses = [
            Response::Pong,
            Response::Ok,
            Response::Accepted { job: 7 },
            Response::Cancelled { job: 7 },
            Response::Result {
                job: 7,
                op: "analyze".into(),
                cache_hits: 1,
                executed: 2,
                payload: Json::object([("advf", Json::from(0.5))]),
            },
            Response::Metrics {
                payload: Json::object([("requests", Json::from(3u64))]),
            },
            Response::Error {
                message: "unknown workload".into(),
            },
        ];
        for response in responses {
            let doc = Json::parse(&response.to_json().to_string()).unwrap();
            assert_eq!(Response::from_json(&doc).unwrap(), response);
        }
    }

    #[test]
    fn wrong_protocol_version_and_kind_are_typed_errors() {
        let doc = Json::object([
            ("protocol", Json::from(99u32)),
            ("kind", Json::from("ping")),
        ]);
        assert!(Request::from_json(&doc).is_err());
        let doc = Json::object([
            ("protocol", Json::from(PROTOCOL_VERSION)),
            ("kind", Json::from("reboot")),
        ]);
        assert!(Request::from_json(&doc).is_err());
        assert!(Response::from_json(&doc).is_err());
    }

    #[test]
    fn priorities_order_and_round_trip() {
        assert!(Priority::High > Priority::Normal && Priority::Normal > Priority::Low);
        for p in [Priority::Low, Priority::Normal, Priority::High] {
            assert_eq!(Priority::parse(p.as_str()), Some(p));
        }
        assert_eq!(Priority::parse("urgent"), None);
    }
}
