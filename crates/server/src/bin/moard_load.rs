//! `moard-load` — concurrent load generator for the daemon.
//!
//! ```text
//! moard-load --addr HOST:PORT [--clients N] [--jobs N] [--shutdown]
//! ```
//!
//! Spawns `--clients` concurrent connections, each submitting a mixed
//! sequence of job sizes (small/medium analyze cells across two workloads,
//! interleaved with pings), and prints a per-operation summary table plus
//! the daemon's cache counters.  Exits nonzero on any protocol error —
//! CI's smoke gate.

use moard_core::AnalysisConfig;
use moard_server::{Client, Priority, Request, Response};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: moard-load --addr HOST:PORT [--clients N] [--jobs N] [--shutdown]\n\
         \n\
         --addr HOST:PORT  daemon address (required)\n\
         --clients N       concurrent client connections (default 8)\n\
         --jobs N          jobs per client (default 4)\n\
         --shutdown        send a clean shutdown request when done"
    );
    std::process::exit(2);
}

/// The mixed job menu: alternating small (MM, coarse stride) and medium
/// (PF, finer stride) analyze cells, at alternating priorities.  Every
/// distinct (workload, config) pair repeats across clients, so a healthy
/// daemon answers most of the fleet from its store.
fn job_for(client: usize, index: usize) -> Request {
    let mix = (client + index) % 4;
    let (workload, stride, max_dfi) = match mix {
        0 | 2 => ("mm", 16, 200),
        1 => ("pf", 8, 400),
        _ => ("pf", 16, 200),
    };
    Request::Analyze {
        workload: workload.into(),
        objects: vec![],
        config: AnalysisConfig {
            site_stride: stride,
            max_dfi_per_object: Some(max_dfi),
            ..AnalysisConfig::default()
        },
        use_dfi: true,
        priority: if mix == 0 {
            Priority::High
        } else {
            Priority::Normal
        },
    }
}

#[derive(Default)]
struct Tally {
    jobs: AtomicU64,
    errors: AtomicU64,
    cache_hits: AtomicU64,
    executed: AtomicU64,
}

fn main() {
    let mut addr = None;
    let mut clients = 8usize;
    let mut jobs = 4usize;
    let mut shutdown = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("moard-load: {flag} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--clients" => match value("--clients").parse() {
                Ok(n) if n >= 1 => clients = n,
                _ => usage(),
            },
            "--jobs" => match value("--jobs").parse() {
                Ok(n) if n >= 1 => jobs = n,
                _ => usage(),
            },
            "--shutdown" => shutdown = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("moard-load: unknown flag `{other}`");
                usage()
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("moard-load: --addr is required");
        usage()
    };

    let tally = Arc::new(Tally::default());
    let latencies: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            let tally = tally.clone();
            std::thread::spawn(move || -> Vec<u64> {
                let mut observed = Vec::new();
                let mut client = match Client::connect(&addr) {
                    Ok(client) => client,
                    Err(e) => {
                        eprintln!("moard-load: client {c} failed to connect: {e}");
                        tally.errors.fetch_add(1, Ordering::Relaxed);
                        return observed;
                    }
                };
                for j in 0..jobs {
                    if client.ping().is_err() {
                        tally.errors.fetch_add(1, Ordering::Relaxed);
                        return observed;
                    }
                    let started = Instant::now();
                    match client.submit(&job_for(c, j)) {
                        Ok((
                            _,
                            Response::Result {
                                cache_hits,
                                executed,
                                ..
                            },
                        )) => {
                            observed.push(started.elapsed().as_nanos() as u64);
                            tally.jobs.fetch_add(1, Ordering::Relaxed);
                            tally.cache_hits.fetch_add(cache_hits, Ordering::Relaxed);
                            tally.executed.fetch_add(executed, Ordering::Relaxed);
                        }
                        Ok((_, other)) => {
                            eprintln!(
                                "moard-load: client {c} job {j}: unexpected `{}` frame",
                                other.kind()
                            );
                            tally.errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            eprintln!("moard-load: client {c} job {j}: {e}");
                            tally.errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                observed
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .flat_map(|h| h.join().unwrap_or_default())
        .collect();

    let jobs_done = tally.jobs.load(Ordering::Relaxed);
    let errors = tally.errors.load(Ordering::Relaxed);
    let cache_hits = tally.cache_hits.load(Ordering::Relaxed);
    let executed = tally.executed.load(Ordering::Relaxed);
    let mut sorted = latencies.clone();
    sorted.sort_unstable();
    let ms = |ns: u64| ns as f64 / 1e6;
    let (min, median, max) = match sorted.len() {
        0 => (0.0, 0.0, 0.0),
        n => (ms(sorted[0]), ms(sorted[n / 2]), ms(sorted[n - 1])),
    };
    println!("moard-load: {clients} clients x {jobs} jobs against {addr}");
    println!("op       jobs  errors  cache-hits  executed  min-ms  med-ms  max-ms");
    println!(
        "analyze  {jobs_done:>4}  {errors:>6}  {cache_hits:>10}  {executed:>8}  {min:>6.1}  {median:>6.1}  {max:>6.1}"
    );

    match Client::connect(&addr).and_then(|mut c| c.metrics()) {
        Ok(metrics) => {
            let hits = metrics.u64_field("cache_hits").unwrap_or(0);
            let completed = metrics.u64_field("jobs_completed").unwrap_or(0);
            println!(
                "daemon: jobs_completed={completed} cache_hits={hits} store_entries={}",
                metrics
                    .u64_field("store_entries")
                    .map(|n| n.to_string())
                    .unwrap_or_else(|_| "none".into())
            );
        }
        Err(e) => eprintln!("moard-load: metrics fetch failed: {e}"),
    }

    if shutdown {
        match Client::connect(&addr).and_then(|mut c| c.shutdown()) {
            Ok(()) => println!("daemon: shutdown acknowledged"),
            Err(e) => {
                eprintln!("moard-load: shutdown failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if errors > 0 {
        eprintln!("moard-load: {errors} protocol error(s)");
        std::process::exit(1);
    }
}
