//! `moard-daemon` — stand-alone daemon binary.
//!
//! ```text
//! moard-daemon [--addr HOST:PORT] [--port N] [--threads N] [--store DIR]
//!              [--trace-backend memory|paged[:DIR]]
//! ```
//!
//! Prints `moard-daemon listening on ADDR` once bound (with port 0 the
//! line carries the resolved ephemeral port — scripts and CI scrape it),
//! then serves until a `shutdown` request arrives.

use moard_server::{Daemon, DaemonConfig};

fn usage() -> ! {
    eprintln!(
        "usage: moard-daemon [--addr HOST:PORT] [--port N] [--threads N] [--store DIR]\n\
         \x20                   [--trace-backend memory|paged[:DIR]]\n\
         \n\
         --addr HOST:PORT  bind address (default 127.0.0.1:7411; port 0 = ephemeral)\n\
         --port N          shorthand for --addr 127.0.0.1:N\n\
         --threads N       job worker threads, N >= 1 (default: available cores)\n\
         --store DIR       shared result store (enables cross-job caching and resume)\n\
         --trace-backend B trace storage for warm harnesses: `memory` (default) or\n\
         \x20                 `paged[:DIR]` on-disk segments; reports are identical"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = DaemonConfig {
        addr: "127.0.0.1:7411".into(),
        ..DaemonConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("moard-daemon: {flag} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--port" => {
                let port = value("--port");
                match port.parse::<u16>() {
                    Ok(port) => config.addr = format!("127.0.0.1:{port}"),
                    Err(_) => {
                        eprintln!("moard-daemon: --port expects a port number, got `{port}`");
                        usage()
                    }
                }
            }
            "--threads" => {
                let n = value("--threads");
                match n.parse::<usize>() {
                    Ok(n) if n >= 1 => config.threads = n,
                    _ => {
                        eprintln!(
                            "moard-daemon: --threads expects an integer >= 1, got `{n}` \
                             (a zero-thread pool could never run a job)"
                        );
                        usage()
                    }
                }
            }
            "--store" => config.store = Some(value("--store").into()),
            "--trace-backend" => {
                let spec = value("--trace-backend");
                match moard_vm::TraceBackendSpec::parse(&spec) {
                    Ok(backend) => config.trace_backend = backend,
                    Err(e) => {
                        eprintln!("moard-daemon: --trace-backend: {e}");
                        usage()
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("moard-daemon: unknown flag `{other}`");
                usage()
            }
        }
    }
    match Daemon::start(config) {
        Ok(daemon) => {
            // Scraped by scripts, tests, and CI: keep the exact shape.
            println!("moard-daemon listening on {}", daemon.addr());
            use std::io::Write;
            let _ = std::io::stdout().flush();
            daemon.join();
            println!("moard-daemon stopped");
        }
        Err(e) => {
            eprintln!("moard-daemon: {e}");
            std::process::exit(1);
        }
    }
}
