//! Hand-rolled operation metrics: lock-free counters and log-scale latency
//! histograms, dumpable as JSON (the `metrics` protocol request) or as a
//! Prometheus-style text exposition.
//!
//! The daemon records, per operation kind: requests served, errors
//! answered, and a latency histogram with power-of-two nanosecond buckets
//! (bucket `i` counts latencies in `[2^i, 2^(i+1))` ns — 32 buckets span
//! 1 ns to ~4.3 s, with the last bucket catching everything beyond).  All
//! cells are relaxed atomics: recording from worker and connection threads
//! never takes a lock, and a snapshot is a plain read (monotonic but not
//! instantaneous — good enough for operational metrics, and the same
//! trade-off Prometheus client libraries make).
//!
//! On top of the per-operation table sit daemon-wide gauges fed by the
//! engines' execution statistics: jobs submitted/completed/cancelled,
//! store cache hits and executed tasks, and frame-level rejections.

use moard_json::Json;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two latency buckets.
pub const LATENCY_BUCKETS: usize = 32;

/// A latency histogram with power-of-two nanosecond buckets.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl LatencyHistogram {
    /// Record one observation.
    pub fn record(&self, ns: u64) {
        let index = (63 - ns.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[index].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        match self.count() {
            0 => 0,
            n => self.sum_ns() / n,
        }
    }

    /// Current per-bucket counts.
    pub fn snapshot(&self) -> [u64; LATENCY_BUCKETS] {
        let mut out = [0u64; LATENCY_BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }

    /// The inclusive upper bound of bucket `index` in nanoseconds.
    pub fn bucket_bound_ns(index: usize) -> u64 {
        1u64 << (index as u32 + 1).min(63)
    }

    fn to_json(&self) -> Json {
        let counts = self.snapshot();
        Json::object([
            ("count", Json::from(self.count())),
            ("sum_ns", Json::from(self.sum_ns())),
            ("mean_ns", Json::from(self.mean_ns())),
            (
                "buckets",
                Json::array(counts.iter().map(|&c| Json::from(c))),
            ),
        ])
    }
}

/// The operation kinds the daemon meters — one row per protocol request
/// kind that reaches the dispatcher.
pub const OPS: [&str; 7] = [
    "ping", "metrics", "cancel", "shutdown", "analyze", "sweep", "validate",
];

/// Per-operation counters and latency.
#[derive(Debug, Default)]
pub struct OpMetrics {
    /// Requests of this kind served (successfully or not).
    pub requests: AtomicU64,
    /// Requests of this kind answered with an error response.
    pub errors: AtomicU64,
    /// End-to-end latency: dispatch for immediate operations, queue-entry
    /// to completion for jobs.
    pub latency: LatencyHistogram,
}

/// The daemon's full metrics registry.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    ops: [OpMetrics; OPS.len()],
    /// Jobs that entered the queue.
    pub jobs_submitted: AtomicU64,
    /// Jobs that completed with a result.
    pub jobs_completed: AtomicU64,
    /// Jobs that left via cooperative cancellation.
    pub jobs_cancelled: AtomicU64,
    /// Engine cells/tasks answered from the shared result store.
    pub cache_hits: AtomicU64,
    /// Engine cells/tasks actually executed.
    pub tasks_executed: AtomicU64,
    /// Frames rejected at the framing layer (oversized announcements).
    pub frames_rejected: AtomicU64,
    /// Frames whose JSON failed to parse into a request.
    pub bad_requests: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
}

impl MetricsRegistry {
    /// A zeroed registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The metrics row of operation `op` (must be one of [`OPS`]).
    pub fn op(&self, op: &str) -> &OpMetrics {
        let index = OPS
            .iter()
            .position(|&o| o == op)
            .expect("operation kind is metered");
        &self.ops[index]
    }

    /// Record a served request of kind `op` with its latency; `ok` is false
    /// when the answer was an error response.
    pub fn record(&self, op: &str, ns: u64, ok: bool) {
        let row = self.op(op);
        row.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            row.errors.fetch_add(1, Ordering::Relaxed);
        }
        row.latency.record(ns);
    }

    /// Snapshot as a JSON document.  `store` carries the shared result
    /// store's current occupancy (`None` when the daemon runs storeless);
    /// `harnesses` the warm-harness cache's canonical workload names.
    pub fn to_json(&self, store_len: Option<usize>, harnesses: &[String]) -> Json {
        let ops = Json::object(OPS.iter().enumerate().map(|(i, &name)| {
            let row = &self.ops[i];
            (
                name,
                Json::object([
                    ("requests", Json::from(row.requests.load(Ordering::Relaxed))),
                    ("errors", Json::from(row.errors.load(Ordering::Relaxed))),
                    ("latency", row.latency.to_json()),
                ]),
            )
        }));
        let load = |c: &AtomicU64| Json::from(c.load(Ordering::Relaxed));
        Json::object([
            ("ops", ops),
            ("jobs_submitted", load(&self.jobs_submitted)),
            ("jobs_completed", load(&self.jobs_completed)),
            ("jobs_cancelled", load(&self.jobs_cancelled)),
            ("cache_hits", load(&self.cache_hits)),
            ("tasks_executed", load(&self.tasks_executed)),
            ("frames_rejected", load(&self.frames_rejected)),
            ("bad_requests", load(&self.bad_requests)),
            ("connections", load(&self.connections)),
            (
                "store_entries",
                match store_len {
                    Some(n) => Json::from(n),
                    None => Json::Null,
                },
            ),
            (
                "warm_harnesses",
                Json::array(harnesses.iter().map(|h| Json::from(h.as_str()))),
            ),
        ])
    }

    /// Prometheus-style text exposition of the same snapshot.  Renders
    /// through [`exposition_from_json`] so a client holding only the wire
    /// document produces byte-identical output.
    pub fn to_text(&self, store_len: Option<usize>, harnesses: &[String]) -> String {
        exposition_from_json(&self.to_json(store_len, harnesses))
            .expect("a registry snapshot always renders")
    }
}

/// Render a metrics snapshot document (the `metrics` response payload) as
/// the Prometheus-style text exposition.  This is the *only* rendering
/// path — the daemon's own [`MetricsRegistry::to_text`] goes through it —
/// so a dump taken in-process and one taken over the wire never drift.
pub fn exposition_from_json(doc: &Json) -> Result<String, moard_json::JsonError> {
    let ops = doc.field("ops")?;
    let mut out = String::new();
    out.push_str("# TYPE moard_requests_total counter\n");
    for name in OPS {
        let row = ops.field(name)?;
        out.push_str(&format!(
            "moard_requests_total{{op=\"{name}\"}} {}\n",
            row.u64_field("requests")?
        ));
    }
    out.push_str("# TYPE moard_errors_total counter\n");
    for name in OPS {
        let row = ops.field(name)?;
        out.push_str(&format!(
            "moard_errors_total{{op=\"{name}\"}} {}\n",
            row.u64_field("errors")?
        ));
    }
    out.push_str("# TYPE moard_latency_ns histogram\n");
    for name in OPS {
        let latency = ops.field(name)?.field("latency")?;
        if latency.u64_field("count")? == 0 {
            continue;
        }
        let mut cumulative = 0u64;
        for (b, bucket) in latency.arr_field("buckets")?.iter().enumerate() {
            let count = bucket.as_u64().ok_or(moard_json::JsonError::WrongType {
                field: "buckets".into(),
                expected: "an array of unsigned integers",
            })?;
            cumulative += count;
            if count > 0 {
                out.push_str(&format!(
                    "moard_latency_ns_bucket{{op=\"{name}\",le=\"{}\"}} {cumulative}\n",
                    LatencyHistogram::bucket_bound_ns(b)
                ));
            }
        }
        out.push_str(&format!(
            "moard_latency_ns_sum{{op=\"{name}\"}} {}\n",
            latency.u64_field("sum_ns")?
        ));
        out.push_str(&format!(
            "moard_latency_ns_count{{op=\"{name}\"}} {}\n",
            latency.u64_field("count")?
        ));
    }
    for name in [
        "jobs_submitted",
        "jobs_completed",
        "jobs_cancelled",
        "cache_hits",
        "tasks_executed",
        "frames_rejected",
        "bad_requests",
        "connections",
    ] {
        let value = doc.u64_field(name)?;
        out.push_str(&format!(
            "# TYPE moard_{name}_total counter\nmoard_{name}_total {value}\n"
        ));
    }
    if let Ok(n) = doc.u64_field("store_entries") {
        out.push_str(&format!(
            "# TYPE moard_store_entries gauge\nmoard_store_entries {n}\n"
        ));
    }
    out.push_str(&format!(
        "# TYPE moard_warm_harnesses gauge\nmoard_warm_harnesses {}\n",
        doc.arr_field("warm_harnesses")?.len()
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2_and_totals_track() {
        let h = LatencyHistogram::default();
        h.record(0); // clamps into bucket 0
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        h.record(u64::MAX / 2); // clamps into the last bucket
        let counts = h.snapshot();
        assert_eq!(counts[0], 2);
        assert_eq!(counts[1], 2);
        assert_eq!(counts[10], 1);
        assert_eq!(counts[LATENCY_BUCKETS - 1], 1);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum_ns(), 1 + 2 + 3 + 1024 + u64::MAX / 2);
        assert!(h.mean_ns() > 0);
        assert_eq!(LatencyHistogram::bucket_bound_ns(0), 2);
        assert_eq!(LatencyHistogram::bucket_bound_ns(10), 2048);
    }

    #[test]
    fn registry_records_and_dumps_both_formats() {
        let m = MetricsRegistry::new();
        m.record("analyze", 1_500, true);
        m.record("analyze", 3_000, false);
        m.record("ping", 200, true);
        m.cache_hits.fetch_add(5, Ordering::Relaxed);
        let doc = m.to_json(Some(3), &["MM".to_string()]);
        let analyze = doc.field("ops").unwrap().field("analyze").unwrap();
        assert_eq!(analyze.u64_field("requests").unwrap(), 2);
        assert_eq!(analyze.u64_field("errors").unwrap(), 1);
        assert_eq!(doc.u64_field("cache_hits").unwrap(), 5);
        assert_eq!(doc.u64_field("store_entries").unwrap(), 3);

        let text = m.to_text(Some(3), &["MM".to_string()]);
        assert!(text.contains("moard_requests_total{op=\"analyze\"} 2"));
        assert!(text.contains("moard_errors_total{op=\"analyze\"} 1"));
        assert!(text.contains("moard_latency_ns_count{op=\"ping\"} 1"));
        assert!(text.contains("moard_cache_hits_total 5"));
        assert!(text.contains("moard_store_entries 3"));
        // Cumulative bucket counts end at the total.
        assert!(text.contains("moard_latency_ns_bucket{op=\"analyze\",le=\"4096\"} 2"));
    }
}
