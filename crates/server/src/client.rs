//! Blocking client for the daemon protocol — used by `moard client`,
//! `moard-load`, the bench smoke case, and the integration tests.

use crate::protocol::{read_frame, write_json, FrameError, Request, Response};
use moard_core::MoardError;
use moard_json::{FromJson, Json, ToJson};
use std::net::{TcpStream, ToSocketAddrs};

/// One protocol connection to a daemon.
pub struct Client {
    stream: TcpStream,
    addr: String,
}

impl Client {
    /// Connect to a daemon at `addr` (e.g. `127.0.0.1:7411`).
    pub fn connect(addr: impl ToSocketAddrs + std::fmt::Display) -> Result<Client, MoardError> {
        let rendered = addr.to_string();
        let stream = TcpStream::connect(addr).map_err(|e| MoardError::io(rendered.clone(), e))?;
        // Frames are small request/response pairs; leaving Nagle on stacks
        // its delay onto the peer's delayed ACK (~40ms per exchange).
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            addr: rendered,
        })
    }

    fn frame_err(&self, e: FrameError) -> MoardError {
        MoardError::Io {
            path: self.addr.clone(),
            message: e.to_string(),
        }
    }

    /// Send one raw frame (testing hook for protocol-robustness checks).
    pub fn send_raw(&mut self, payload: &[u8]) -> Result<(), MoardError> {
        use crate::protocol::write_frame;
        write_frame(&mut self.stream, payload).map_err(|e| self.frame_err(e))
    }

    /// Read the next response frame.
    pub fn read_response(&mut self) -> Result<Response, MoardError> {
        let frame = read_frame(&mut self.stream)
            .map_err(|e| self.frame_err(e))?
            .ok_or_else(|| MoardError::Io {
                path: self.addr.clone(),
                message: "daemon closed the connection".into(),
            })?;
        let text = std::str::from_utf8(&frame).map_err(|e| MoardError::Io {
            path: self.addr.clone(),
            message: format!("response frame is not UTF-8: {e}"),
        })?;
        Ok(Response::from_json(&Json::parse(text)?)?)
    }

    /// Send `request` and read exactly one response frame — the whole
    /// exchange for immediate (non-job) operations.
    pub fn request(&mut self, request: &Request) -> Result<Response, MoardError> {
        write_json(&mut self.stream, &request.to_json()).map_err(|e| self.frame_err(e))?;
        self.read_response()
    }

    /// Submit a job request: returns the accepted job id and then blocks
    /// for the final frame ([`Response::Result`], [`Response::Cancelled`],
    /// or [`Response::Error`]).
    pub fn submit(&mut self, request: &Request) -> Result<(u64, Response), MoardError> {
        let accepted = self.request(request)?;
        let job = match accepted {
            Response::Accepted { job } => job,
            Response::Error { message } => {
                return Err(MoardError::InvalidConfig(message));
            }
            other => {
                return Err(MoardError::InvalidConfig(format!(
                    "expected an `accepted` frame, got `{}`",
                    other.kind()
                )))
            }
        };
        Ok((job, self.read_response()?))
    }

    /// Submit a job and return only its accepted id, leaving the final
    /// frame unread (pair with [`Client::read_response`]) — the shape a
    /// cancelling client needs.
    pub fn submit_nowait(&mut self, request: &Request) -> Result<u64, MoardError> {
        match self.request(request)? {
            Response::Accepted { job } => Ok(job),
            Response::Error { message } => Err(MoardError::InvalidConfig(message)),
            other => Err(MoardError::InvalidConfig(format!(
                "expected an `accepted` frame, got `{}`",
                other.kind()
            ))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), MoardError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(MoardError::InvalidConfig(format!(
                "expected `pong`, got `{}`",
                other.kind()
            ))),
        }
    }

    /// Fetch the daemon's metrics document.
    pub fn metrics(&mut self) -> Result<Json, MoardError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { payload } => Ok(payload),
            other => Err(MoardError::InvalidConfig(format!(
                "expected `metrics`, got `{}`",
                other.kind()
            ))),
        }
    }

    /// Cancel a job by id (from any connection).
    pub fn cancel(&mut self, job: u64) -> Result<Response, MoardError> {
        self.request(&Request::Cancel { job })
    }

    /// Ask the daemon to stop cleanly.
    pub fn shutdown(&mut self) -> Result<(), MoardError> {
        match self.request(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            other => Err(MoardError::InvalidConfig(format!(
                "expected `ok`, got `{}`",
                other.kind()
            ))),
        }
    }
}
