//! End-to-end daemon tests: protocol robustness under garbage input,
//! concurrent clients sharing the result cache, cooperative cancellation,
//! and kill/restart resume.

use moard_core::AnalysisConfig;
use moard_server::{Client, Daemon, DaemonConfig, Priority, Request, Response};
use std::io::Write;
use std::net::TcpStream;

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("moard-daemon-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(threads: usize, store: Option<std::path::PathBuf>) -> Daemon {
    Daemon::start(DaemonConfig {
        addr: "127.0.0.1:0".into(),
        threads,
        store,
        ..DaemonConfig::default()
    })
    .expect("daemon binds an ephemeral port")
}

fn analyze_at(workload: &str, priority: Priority) -> Request {
    Request::Analyze {
        workload: workload.into(),
        objects: vec![],
        config: AnalysisConfig {
            site_stride: 16,
            max_dfi_per_object: Some(200),
            ..AnalysisConfig::default()
        },
        use_dfi: true,
        priority,
    }
}

fn quick_analyze(workload: &str) -> Request {
    analyze_at(workload, Priority::Normal)
}

/// A validate job big enough to still be running when we cancel it.
fn slow_validate() -> Request {
    use moard_inject::{ValidationSpec, WorkloadSelector};
    Request::Validate {
        spec: ValidationSpec::default()
            .workloads(WorkloadSelector::Named(vec!["mm".into()]))
            .stride(4)
            .target_margin(0.005)
            .max_trials(2_000_000)
            .shards(8, 1),
        priority: Priority::Normal,
    }
}

fn shutdown_and_join(daemon: Daemon) {
    let mut client = Client::connect(daemon.addr()).unwrap();
    client.shutdown().unwrap();
    daemon.join();
}

#[test]
fn ping_metrics_and_clean_shutdown() {
    let daemon = start(2, None);
    let mut client = Client::connect(daemon.addr()).unwrap();
    client.ping().unwrap();
    let metrics = client.metrics().unwrap();
    assert_eq!(metrics.u64_field("jobs_submitted").unwrap(), 0);
    assert!(matches!(
        metrics.field("store_entries").unwrap(),
        moard_json::Json::Null
    ));
    shutdown_and_join(daemon);
}

#[test]
fn garbage_frames_get_error_responses_never_a_hang_or_panic() {
    let daemon = start(1, None);
    // 1. Valid frames with garbage payloads: every one is answered with a
    //    typed error frame and the connection stays usable.
    let mut client = Client::connect(daemon.addr()).unwrap();
    let mut lcg: u64 = 0x5EED;
    for case in 0..64u32 {
        let payload: Vec<u8> = match case % 4 {
            // Pseudo-random bytes (deterministic LCG, frequently invalid UTF-8).
            0 => (0..(case as usize * 3 + 1))
                .map(|_| {
                    lcg = lcg
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (lcg >> 33) as u8
                })
                .collect(),
            // Truncated / malformed JSON.
            1 => b"{\"protocol\":1,\"kind\":\"anal".to_vec(),
            // Valid JSON, wrong shape.
            2 => b"[1,2,3]".to_vec(),
            // Valid envelope, unknown kind / wrong version.
            _ => b"{\"protocol\":99,\"kind\":\"ping\"}".to_vec(),
        };
        client.send_raw(&payload).unwrap();
        match client.read_response().unwrap() {
            Response::Error { message } => assert!(!message.is_empty()),
            other => panic!("garbage frame answered with `{}`", other.kind()),
        }
    }
    // The connection still works after 64 rejected frames.
    client.ping().unwrap();

    // 2. An oversized length announcement is rejected without allocating,
    //    answered, and the connection closed.
    let mut raw = TcpStream::connect(daemon.addr()).unwrap();
    raw.write_all(&u32::MAX.to_be_bytes()).unwrap();
    raw.flush().unwrap();
    let mut oversized = Client::connect(daemon.addr()).unwrap();
    oversized.ping().unwrap(); // daemon is alive and serving others

    // 3. A truncated length prefix followed by EOF must not wedge anything.
    let mut raw = TcpStream::connect(daemon.addr()).unwrap();
    raw.write_all(&[0, 0]).unwrap();
    drop(raw);

    let mut client = Client::connect(daemon.addr()).unwrap();
    let metrics = client.metrics().unwrap();
    assert_eq!(metrics.u64_field("bad_requests").unwrap(), 64);
    assert_eq!(metrics.u64_field("frames_rejected").unwrap(), 1);
    shutdown_and_join(daemon);
}

#[test]
fn concurrent_clients_share_the_cache_byte_identically() {
    let dir = temp_dir("concurrent");
    let daemon = start(2, Some(dir.clone()));
    let addr = daemon.addr();

    // Two clients race the same cell on a 2-worker pool.
    let submit = move || {
        let mut client = Client::connect(addr).unwrap();
        client.submit(&quick_analyze("mm")).unwrap()
    };
    let racer = std::thread::spawn(submit);
    let (_, first) = submit();
    let (_, second) = racer.join().unwrap();

    let payload = |response: &Response| match response {
        Response::Result { payload, .. } => payload.to_string(),
        other => panic!("job answered with `{}`", other.kind()),
    };
    // Byte-identical reports regardless of which one computed the cell.
    assert_eq!(payload(&first), payload(&second));

    // A third submission of the same cell is a pure cache hit.
    let mut client = Client::connect(addr).unwrap();
    let (_, third) = client.submit(&quick_analyze("mm")).unwrap();
    assert_eq!(payload(&third), payload(&first));
    match third {
        Response::Result {
            cache_hits,
            executed,
            ..
        } => {
            assert!(cache_hits > 0, "repeat job must be served from the store");
            assert_eq!(executed, 0);
        }
        _ => unreachable!(),
    }
    let metrics = client.metrics().unwrap();
    assert!(metrics.u64_field("cache_hits").unwrap() > 0);
    assert_eq!(metrics.u64_field("jobs_completed").unwrap(), 3);
    // One warm harness serves all three jobs.
    let warm = metrics.field("warm_harnesses").unwrap().as_array().unwrap();
    assert_eq!(warm.len(), 1);
    shutdown_and_join(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancelled_job_frees_its_pool_slot() {
    let daemon = start(1, None); // single worker: a stuck job would block everything
    let addr = daemon.addr();

    let mut submitter = Client::connect(addr).unwrap();
    let job = submitter.submit_nowait(&slow_validate()).unwrap();

    // Cancel from a second connection while the job occupies the only slot.
    let mut canceller = Client::connect(addr).unwrap();
    assert_eq!(canceller.cancel(job).unwrap(), Response::Ok);

    // The submitter's final frame is the cancellation.
    assert_eq!(
        submitter.read_response().unwrap(),
        Response::Cancelled { job }
    );

    // The pool slot is free again: a fresh job completes on the same
    // single-worker daemon.
    let (_, response) = canceller.submit(&quick_analyze("mm")).unwrap();
    assert!(matches!(response, Response::Result { .. }));

    let metrics = canceller.metrics().unwrap();
    assert_eq!(metrics.u64_field("jobs_cancelled").unwrap(), 1);
    assert_eq!(metrics.u64_field("jobs_completed").unwrap(), 1);
    // Cancelling a job that already left the table is a typed error.
    assert!(matches!(
        canceller.cancel(job).unwrap(),
        Response::Error { .. }
    ));
    shutdown_and_join(daemon);
}

#[test]
fn restarted_daemon_serves_previous_results_from_its_store() {
    let dir = temp_dir("restart");
    let request = quick_analyze("mm");

    // First daemon computes the cell, then is torn down (join only —
    // the store's atomic writes make this equivalent to a SIGKILL between
    // completed cells).
    let first = start(2, Some(dir.clone()));
    let mut client = Client::connect(first.addr()).unwrap();
    let (_, cold) = client.submit(&request).unwrap();
    shutdown_and_join(first);

    // A second daemon over the same store answers byte-identically, purely
    // from cache.
    let second = start(2, Some(dir.clone()));
    let mut client = Client::connect(second.addr()).unwrap();
    let (_, warm) = client.submit(&request).unwrap();
    match (&cold, &warm) {
        (
            Response::Result { payload: a, .. },
            Response::Result {
                payload: b,
                cache_hits,
                executed,
                ..
            },
        ) => {
            assert_eq!(a.to_string(), b.to_string());
            assert!(*cache_hits > 0);
            assert_eq!(*executed, 0);
        }
        _ => panic!("both submissions must produce results"),
    }
    let metrics = client.metrics().unwrap();
    assert!(metrics.u64_field("store_entries").unwrap() > 0);
    shutdown_and_join(second);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn high_priority_jobs_overtake_queued_normal_jobs() {
    // One worker, and occupy it so subsequent submissions truly queue.
    let daemon = start(1, None);
    let addr = daemon.addr();
    let mut blocker = Client::connect(addr).unwrap();
    let blocking_job = blocker.submit_nowait(&slow_validate()).unwrap();

    // Queue a normal job, then a high-priority one.
    let normal = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.submit(&quick_analyze("mm")).unwrap();
        std::time::Instant::now()
    });
    // Give the normal job time to enter the queue first.
    std::thread::sleep(std::time::Duration::from_millis(150));
    let high = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.submit(&analyze_at("mm", Priority::High)).unwrap();
        std::time::Instant::now()
    });

    // Release the worker.
    std::thread::sleep(std::time::Duration::from_millis(150));
    Client::connect(addr).unwrap().cancel(blocking_job).unwrap();
    assert_eq!(
        blocker.read_response().unwrap(),
        Response::Cancelled { job: blocking_job }
    );

    let normal_done = normal.join().unwrap();
    let high_done = high.join().unwrap();
    assert!(
        high_done <= normal_done,
        "the high-priority job must leave the queue before the earlier normal job"
    );
    shutdown_and_join(daemon);
}
