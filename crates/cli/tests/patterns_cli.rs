//! Integration tests of the `--patterns` flag: every analysis subcommand
//! accepts the canonical pattern-set grammar, the sweep grid takes a list,
//! malformed or misplaced spellings are typed errors, and the pattern set
//! lands in the serialized reports — all through the real binary.

use moard_inject::SessionReport;
use std::process::{Command, Output};

fn moard(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_moard"))
        .args(args)
        .output()
        .expect("the moard binary runs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8(output.stdout.clone()).expect("stdout is UTF-8")
}

fn stderr(output: &Output) -> String {
    String::from_utf8(output.stderr.clone()).expect("stderr is UTF-8")
}

#[test]
fn analyze_accepts_a_multibit_pattern_set() {
    let output = moard(&[
        "--format",
        "json",
        "report",
        "mm",
        "C",
        "--stride",
        "32",
        "--max-dfi",
        "100",
        "--patterns",
        "adjacent-bits:2",
    ]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let report = SessionReport::from_json_str(&stdout(&output)).expect("stdout parses");
    assert_eq!(
        report.config.patterns.canonical(),
        "adjacent-bits:2".to_string()
    );
    let advf = &report.reports[0];
    assert_eq!(advf.patterns, "adjacent-bits:2");
    assert_eq!(advf.pattern_tallies.len(), 1);
    assert_eq!(advf.pattern_tallies[0].flipped_bits, 2);
    assert!(advf.pattern_tallies[0].evaluated > 0);
}

#[test]
fn sweep_takes_a_pattern_grid_list() {
    let output = moard(&[
        "--format",
        "json",
        "sweep",
        "mm",
        "--stride",
        "32",
        "--max-dfi",
        "100",
        "--patterns",
        "single-bit,adjacent-bits:2",
    ]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let report = moard_core::StudyReport::from_json_str(&stdout(&output)).expect("stdout parses");
    // One aDVF cell per pattern-set grid entry.
    assert_eq!(report.entries.len(), 2);
    assert_eq!(report.entries[0].config.patterns.canonical(), "single-bit");
    assert_eq!(
        report.entries[1].config.patterns.canonical(),
        "adjacent-bits:2"
    );
    // Both cells analyzed the same site population under different menus.
    assert_eq!(
        report.entries[0].advf.sites_analyzed,
        report.entries[1].advf.sites_analyzed
    );
}

#[test]
fn malformed_and_degenerate_pattern_sets_are_typed_errors() {
    for bad in [
        "bits:2",
        "adjacent-bits:0",
        "separated-pair:0",
        "explicit:1+1",
    ] {
        let output = moard(&["analyze", "mm", "C", "--patterns", bad]);
        assert!(!output.status.success(), "`{bad}` was accepted");
        let err = stderr(&output);
        assert!(err.contains("--patterns"), "`{bad}` error: {err}");
    }
    // An empty explicit set parses but is rejected by config validation
    // (it would enumerate zero patterns and trivially mask everything).
    let output = moard(&["analyze", "mm", "C", "--patterns", "explicit:"]);
    assert!(!output.status.success());
    assert!(stderr(&output).contains("non-empty"));
}

#[test]
fn patterns_flag_is_rejected_where_it_is_not_read() {
    let output = moard(&["list", "--patterns", "single-bit"]);
    assert!(!output.status.success());
    assert!(stderr(&output).contains("not valid for `moard list`"));
}
