//! Integration tests of the `moard minimize` subcommand and the
//! `moard validate --emit-scenarios` bridge — the JSON and text output
//! surfaces, emitted scenario files, and the error paths, all through the
//! real binary.

use moard_inject::{load_scenario, replay_scenario, HarnessCache, MinimizeReport};
use std::path::PathBuf;
use std::process::{Command, Output};

fn moard(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_moard"))
        .args(args)
        .output()
        .expect("the moard binary runs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8(output.stdout.clone()).expect("stdout is UTF-8")
}

fn stderr(output: &Output) -> String {
    String::from_utf8(output.stderr.clone()).expect("stderr is UTF-8")
}

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("moard-cli-minimize-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A fast minimization: the committed MM reproducer's cell, pinned so the
/// finder has nothing to scan.
const QUICK: &[&str] = &[
    "minimize",
    "mm",
    "C",
    "--site",
    "413:operand:0",
    "--mask",
    "62",
    "--expect",
    "incorrect",
];

#[test]
fn json_output_is_a_valid_minimize_report() {
    let output = moard(&[&["--format", "json"], QUICK].concat());
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let report = MinimizeReport::from_json_str(&stdout(&output)).expect("stdout parses");
    let s = &report.scenario;
    assert_eq!(s.workload, "MM");
    assert_eq!(s.object, "C");
    assert_eq!(s.sites.len(), 1);
    assert_eq!(s.sites[0].record_id, 413);
    assert_eq!(s.pattern.bits, vec![62]);
    assert_eq!(s.window, 0, "a direct corruption needs no window");
    assert_eq!(report.initial_sites, 1, "the site was pinned");
    assert!(report.probes >= report.injections);
    assert!(report.injections > 0);
}

#[test]
fn text_output_and_emitted_scenario_replay_bit_exactly() {
    let dir = temp_dir("emit");
    let output = moard(&[QUICK, &["--emit-scenario", dir.to_str().unwrap()]].concat());
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let text = stdout(&output);
    for needle in [
        "workload          : MM",
        "data object       : C",
        "sites             : 1 -> 1 (record 413 operand:0)",
        "mask bits         :",
        "window            :",
        "expected outcome  : incorrect",
        "oracle probes     :",
        "scenario written  :",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }

    // The emitted file is a canonical spec that replays bit-exactly.
    let path = dir.join("mm-c-incorrect.json");
    let spec = load_scenario(&path).expect("emitted scenario parses");
    assert_eq!(spec.file_name(), "mm-c-incorrect.json");
    let registry = moard_abft::registry_with_abft();
    let cache = HarnessCache::new();
    let harness = cache.get_or_prepare(&registry, &spec.workload).unwrap();
    let replay = replay_scenario(&harness, &spec).expect("scenario replays");
    assert_eq!(replay.mismatch(&spec), None, "replay diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn minimization_is_deterministic_across_runs() {
    let args = [&["--format", "json"], QUICK].concat();
    let a = moard(&args);
    let b = moard(&args);
    assert!(a.status.success() && b.status.success());
    assert_eq!(stdout(&a), stdout(&b), "same spec, different reports");
}

#[test]
fn validate_emit_scenarios_turns_a_divergence_into_a_replayable_spec() {
    // A tolerance-tightened campaign on a cell whose model prediction is
    // genuinely optimistic: the verdict is model-optimistic, so the bridge
    // must auto-minimize it into a scenario spec.
    let dir = temp_dir("validate");
    let output = moard(&[
        "validate",
        "bt",
        "--objects",
        "grid_points",
        "--stride",
        "64",
        "--max-dfi",
        "500",
        "--margin",
        "0.05",
        "--max-trials",
        "200",
        "--tolerance",
        "0.1",
        "--seed",
        "3",
        "--emit-scenarios",
        dir.to_str().unwrap(),
    ]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("model-optimistic"), "{text}");
    assert!(
        text.contains("minimized BT/grid_points -> "),
        "no emission line in:\n{text}"
    );

    let specs = moard_inject::load_scenario_dir(&dir).unwrap();
    assert_eq!(specs.len(), 1, "exactly one optimistic cell, one spec");
    let (path, spec) = &specs[0];
    assert_eq!(spec.workload, "BT");
    assert_eq!(spec.object, "grid_points");
    assert_eq!(
        path.file_name().and_then(|n| n.to_str()),
        Some(spec.file_name().as_str())
    );
    // The spec adopted the campaign's population parameters...
    assert_eq!(spec.seed, 3);
    // ...and replays bit-exactly against a fresh harness.
    let registry = moard_abft::registry_with_abft();
    let cache = HarnessCache::new();
    let harness = cache.get_or_prepare(&registry, "bt").unwrap();
    let replay = replay_scenario(&harness, spec).expect("emitted spec replays");
    assert_eq!(replay.mismatch(spec), None, "replay diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn degenerate_inputs_are_typed_failures() {
    // Usage: both positionals are required.
    let output = moard(&["minimize", "mm"]);
    assert_eq!(output.status.code(), Some(2));

    let output = moard(&["minimize", "warp-drive", "C"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(
        stderr(&output).contains("unknown workload"),
        "{}",
        stderr(&output)
    );

    let output = moard(&["minimize", "mm", "C", "--site", "413"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(
        stderr(&output).contains("`RECORD:operand:N` or `RECORD:store-dest`"),
        "{}",
        stderr(&output)
    );

    let output = moard(&["minimize", "mm", "C", "--mask", "4+4"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(
        stderr(&output).contains("strictly increasing"),
        "{}",
        stderr(&output)
    );

    let output = moard(&["minimize", "mm", "C", "--expect", "explosion"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(stderr(&output).contains("--expect"), "{}", stderr(&output));

    // A site that does not exist in the trace is named, not ignored.
    let output = moard(&["minimize", "mm", "C", "--site", "999999:operand:0"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(
        stderr(&output).contains("does not exist"),
        "{}",
        stderr(&output)
    );

    // An expectation nothing reproduces is a typed finder failure.
    let mut impossible: Vec<&str> = QUICK[..QUICK.len() - 1].to_vec();
    impossible.push("crashed");
    let output = moard(&impossible);
    assert_eq!(output.status.code(), Some(1));
    assert!(
        stderr(&output).contains("nothing to minimize"),
        "{}",
        stderr(&output)
    );

    // Flags from other subcommands are rejected, not silently dropped.
    let output = moard(&["minimize", "mm", "C", "--margin", "0.05"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(
        stderr(&output).contains("not valid for `moard minimize`"),
        "{}",
        stderr(&output)
    );
    let output = moard(&["validate", "mm", "--emit-scenario", "/tmp/x"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(
        stderr(&output).contains("not valid for `moard validate`"),
        "{}",
        stderr(&output)
    );
    let output = moard(&["minimize", "mm", "C", "--emit-scenarios", "/tmp/x"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(
        stderr(&output).contains("not valid for `moard minimize`"),
        "{}",
        stderr(&output)
    );

    // `--report` insists the requested cell is in the report.
    let report_path = temp_dir("no-such-cell").with_extension("json");
    let quick = moard(&[
        "--format",
        "json",
        "validate",
        "mm",
        "--stride",
        "32",
        "--max-dfi",
        "100",
        "--margin",
        "0.15",
        "--max-trials",
        "48",
    ]);
    assert!(quick.status.success());
    std::fs::write(&report_path, stdout(&quick)).unwrap();
    let output = moard(&[
        "minimize",
        "pf",
        "xe",
        "--report",
        report_path.to_str().unwrap(),
    ]);
    assert_eq!(output.status.code(), Some(1));
    assert!(
        stderr(&output).contains("has no cell `pf/xe`"),
        "{}",
        stderr(&output)
    );
    let _ = std::fs::remove_file(&report_path);
}

/// `--report` adopts the discovering campaign's population parameters.
#[test]
fn minimize_from_report_adopts_campaign_parameters() {
    let report_path = temp_dir("adopt").with_extension("json");
    let campaign = moard(&[
        "--format",
        "json",
        "validate",
        "mm",
        "--stride",
        "32",
        "--max-dfi",
        "100",
        "--margin",
        "0.15",
        "--max-trials",
        "48",
        "--seed",
        "77",
    ]);
    assert!(campaign.status.success(), "stderr: {}", stderr(&campaign));
    std::fs::write(&report_path, stdout(&campaign)).unwrap();

    let output = moard(&[
        "--format",
        "json",
        "minimize",
        "mm",
        "C",
        "--report",
        report_path.to_str().unwrap(),
    ]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let report = MinimizeReport::from_json_str(&stdout(&output)).unwrap();
    assert_eq!(report.scenario.seed, 77, "campaign seed not adopted");
    let _ = std::fs::remove_file(&report_path);
}
