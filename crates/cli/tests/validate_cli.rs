//! Integration tests of the `moard validate` subcommand: the JSON and text
//! output surfaces, the resume-from-a-partial-store flow, and the error
//! paths — all through the real binary.

use moard_core::ValidationReport;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn moard(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_moard"))
        .args(args)
        .output()
        .expect("the moard binary runs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8(output.stdout.clone()).expect("stdout is UTF-8")
}

fn stderr(output: &Output) -> String {
    String::from_utf8(output.stderr.clone()).expect("stderr is UTF-8")
}

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("moard-cli-validate-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A fast campaign: MM's one target object, heavy striding, small budgets.
const QUICK: &[&str] = &[
    "validate",
    "mm",
    "--stride",
    "32",
    "--max-dfi",
    "100",
    "--margin",
    "0.15",
    "--max-trials",
    "48",
];

#[test]
fn json_output_is_a_valid_validation_report() {
    let output = moard(&[&["--format", "json"], QUICK].concat());
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let report = ValidationReport::from_json_str(&stdout(&output)).expect("stdout parses");
    assert_eq!(report.cells.len(), 1);
    let cell = &report.cells[0];
    assert_eq!(cell.workload, "MM");
    assert_eq!(cell.object, "C");
    assert_eq!(report.config.site_stride, 32);
    assert_eq!(report.config.max_dfi_per_object, Some(100));
    assert_eq!(report.max_trials, 48);
    assert!((report.target_margin - 0.15).abs() < 1e-12);
    // The campaign really ran, stayed within its cap, and its interval is a
    // genuine sub-interval of [0, 1].
    assert!(cell.advf.sites_analyzed > 0);
    assert!(cell.rfi.trials() > 0 && cell.rfi.trials() <= 48);
    let (low, high) = cell.rfi.wilson_bounds(report.confidence);
    assert!((0.0..=1.0).contains(&low) && (0.0..=1.0).contains(&high));
    assert!(low < high);
}

#[test]
fn text_output_renders_the_validation_table() {
    let output = moard(QUICK);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("spec fingerprint"), "{text}");
    assert!(text.contains("MM"), "{text}");
    assert!(text.contains("aDVF"), "{text}");
    assert!(text.contains("agreement"), "{text}");
    // Both legs executed fresh (no store involved).
    assert!(
        text.contains("1 advf + 1 rfi executed, 0 cache hits"),
        "{text}"
    );
}

#[test]
fn campaign_is_deterministic_across_runs_and_seeded() {
    let args = [&["--format", "json"], QUICK].concat();
    let a = moard(&args);
    let b = moard(&args);
    assert!(a.status.success() && b.status.success());
    assert_eq!(stdout(&a), stdout(&b), "same spec, different reports");
    // A different seed is a different campaign.
    let c = moard(&[args.as_slice(), &["--seed", "9"]].concat());
    assert!(c.status.success());
    let base = ValidationReport::from_json_str(&stdout(&a)).unwrap();
    let reseeded = ValidationReport::from_json_str(&stdout(&c)).unwrap();
    assert_ne!(base.spec_fingerprint, reseeded.spec_fingerprint);
}

#[test]
fn resume_after_a_partial_store_is_byte_identical() {
    let store = temp_dir("resume");
    let store_arg = store.to_str().unwrap();
    let base = [&["--format", "json"], QUICK, &["--store", store_arg]].concat();

    // Cold run fills the store (one aDVF leg + one campaign leg).
    let cold = moard(&base);
    assert!(cold.status.success(), "stderr: {}", stderr(&cold));
    let mut files = list_store(&store);
    assert_eq!(files.len(), 2);

    // Simulate a campaign killed after one completed leg: drop a document.
    files.sort();
    std::fs::remove_file(&files[0]).unwrap();

    // The resumed campaign recomputes only the missing leg and reproduces
    // the cold report byte for byte.
    let resumed = moard(&[base.as_slice(), &["--resume"]].concat());
    assert!(resumed.status.success(), "stderr: {}", stderr(&resumed));
    assert_eq!(stdout(&resumed), stdout(&cold));
    assert_eq!(list_store(&store).len(), 2);

    // Text mode reports the cache hits of a fully resumed run.
    let full = moard(&[QUICK, &["--store", store_arg, "--resume"]].concat());
    assert!(full.status.success());
    assert!(
        stdout(&full).contains("0 advf + 0 rfi executed, 2 cache hits, 0 harnesses prepared"),
        "{}",
        stdout(&full)
    );
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn degenerate_statistics_and_unknown_names_are_typed_failures() {
    let output = moard(&["validate", "warp-drive"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(
        stderr(&output).contains("unknown workload"),
        "{}",
        stderr(&output)
    );

    let output = moard(&["validate", "mm", "--objects", "no-such-object"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(
        stderr(&output).contains("no data object"),
        "{}",
        stderr(&output)
    );

    let output = moard(&["validate", "mm", "--resume"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(stderr(&output).contains("--store"), "{}", stderr(&output));

    let output = moard(&["validate", "mm", "--confidence", "50"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(
        stderr(&output).contains("confidence"),
        "{}",
        stderr(&output)
    );

    let output = moard(&["validate", "mm", "--margin", "six"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(stderr(&output).contains("--margin"), "{}", stderr(&output));

    let output = moard(&["validate", "mm", "--margin", "0.9"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(
        stderr(&output).contains("target margin"),
        "{}",
        stderr(&output)
    );

    let output = moard(&["validate", "mm", "--max-dfi", "lots"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(stderr(&output).contains("--max-dfi"), "{}", stderr(&output));

    // Unknown flags are rejected, not silently ignored.
    let output = moard(&["validate", "mm", "--margn", "0.1"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(
        stderr(&output).contains("unknown flag"),
        "{}",
        stderr(&output)
    );

    // A flag that belongs to a different subcommand is rejected too — it
    // would otherwise be silently dropped.
    let output = moard(&["sweep", "mm", "--max-trials", "10"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(
        stderr(&output).contains("not valid for `moard sweep`"),
        "{}",
        stderr(&output)
    );
    let output = moard(&["inject", "mm", "C", "--margin", "0.01"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(
        stderr(&output).contains("not valid for `moard inject`"),
        "{}",
        stderr(&output)
    );
    let output = moard(&["validate", "mm", "--rfi-tests", "10"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(
        stderr(&output).contains("not valid for `moard validate`"),
        "{}",
        stderr(&output)
    );

    // Workloads given both positionally and via --workloads are rejected.
    let output = moard(&["validate", "mm", "--workloads", "table1"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(
        stderr(&output).contains("use one form"),
        "{}",
        stderr(&output)
    );
}

fn list_store(dir: &Path) -> Vec<PathBuf> {
    std::fs::read_dir(dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect()
}
