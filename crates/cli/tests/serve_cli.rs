//! Integration tests of `moard serve`, `moard client`, and the shared
//! `--threads` flag — all through the real binaries and a real TCP
//! connection.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Output, Stdio};

fn moard(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_moard"))
        .args(args)
        .output()
        .expect("the moard binary runs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8(output.stdout.clone()).expect("stdout is UTF-8")
}

fn stderr(output: &Output) -> String {
    String::from_utf8(output.stderr.clone()).expect("stderr is UTF-8")
}

/// Start `moard serve` on an ephemeral port and scrape the resolved
/// address from its announcement line.
fn spawn_daemon(extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_moard"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("moard serve starts");
    let mut line = String::new();
    BufReader::new(child.stdout.as_mut().expect("stdout is piped"))
        .read_line(&mut line)
        .expect("the announcement line arrives");
    let addr = line
        .trim()
        .strip_prefix("moard serve listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement `{line}`"))
        .to_string();
    (child, addr)
}

#[test]
fn threads_zero_and_seq_conflicts_are_typed_errors() {
    for command in ["sweep", "validate"] {
        let output = moard(&[command, "mm", "--threads", "0"]);
        assert_eq!(output.status.code(), Some(1), "{command}");
        let err = stderr(&output);
        assert!(err.contains("--threads"), "{command}: {err}");
        assert!(err.contains(">= 1"), "{command}: {err}");

        let output = moard(&[command, "mm", "--seq", "--threads", "2"]);
        assert_eq!(output.status.code(), Some(1), "{command}");
        assert!(
            stderr(&output).contains("contradict"),
            "{command}: {}",
            stderr(&output)
        );
    }
    let output = moard(&["serve", "--threads", "0"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(stderr(&output).contains(">= 1"), "{}", stderr(&output));
    // `--threads` stays rejected where no pool exists to size.
    let output = moard(&["analyze", "mm", "--threads", "2"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(
        stderr(&output).contains("not valid for `moard analyze`"),
        "{}",
        stderr(&output)
    );
}

#[test]
fn sweep_with_a_fixed_pool_matches_the_sequential_report() {
    let quick: &[&str] = &["sweep", "mm", "--stride", "32", "--max-dfi", "100"];
    let fixed = moard(&[&["--format", "json"][..], quick, &["--threads", "2"]].concat());
    assert!(fixed.status.success(), "stderr: {}", stderr(&fixed));
    let seq = moard(&[&["--format", "json"][..], quick, &["--seq"]].concat());
    assert!(seq.status.success(), "stderr: {}", stderr(&seq));
    assert_eq!(
        stdout(&fixed),
        stdout(&seq),
        "reports must not depend on the pool size"
    );
}

#[test]
fn client_without_a_daemon_or_an_addr_is_a_typed_error() {
    let output = moard(&["client", "ping"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(stderr(&output).contains("--addr"), "{}", stderr(&output));

    // Nothing listens on this port (reserved, discard-on-fire range is
    // avoided by binding then dropping).
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let dead = listener.local_addr().unwrap().to_string();
    drop(listener);
    let output = moard(&["client", "ping", "--addr", &dead]);
    assert_eq!(output.status.code(), Some(1));
    assert!(stderr(&output).contains("error:"), "{}", stderr(&output));
}

#[test]
fn serve_answers_the_client_subcommand_end_to_end() {
    let store = std::env::temp_dir().join(format!("moard-cli-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let (mut daemon, addr) = spawn_daemon(&["--threads", "2", "--store", store.to_str().unwrap()]);
    let addr = addr.as_str();

    let output = moard(&["client", "ping", "--addr", addr]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    assert_eq!(stdout(&output).trim(), "pong");

    // A submitted job comes back as the wrapped report…
    let job = &[
        "--format",
        "json",
        "client",
        "analyze",
        "mm",
        "--addr",
        addr,
        "--stride",
        "32",
        "--max-dfi",
        "100",
        "--priority",
        "high",
    ];
    let cold = moard(job);
    assert!(cold.status.success(), "stderr: {}", stderr(&cold));
    let cold_doc = moard_json::Json::parse(&stdout(&cold)).expect("client output parses");
    assert_eq!(cold_doc.str_field("op").unwrap(), "analyze");
    assert!(cold_doc.u64_field("executed").unwrap() > 0);

    // …and the repeat submission is served from the daemon's store with a
    // byte-identical payload.
    let warm = moard(job);
    assert!(warm.status.success(), "stderr: {}", stderr(&warm));
    let warm_doc = moard_json::Json::parse(&stdout(&warm)).unwrap();
    assert!(warm_doc.u64_field("cache_hits").unwrap() > 0);
    assert_eq!(warm_doc.u64_field("executed").unwrap(), 0);
    assert_eq!(
        cold_doc.field("payload").unwrap().to_string(),
        warm_doc.field("payload").unwrap().to_string()
    );

    // Metrics in both formats: the JSON document and the text exposition.
    let output = moard(&["--format", "json", "client", "metrics", "--addr", addr]);
    let metrics = moard_json::Json::parse(&stdout(&output)).unwrap();
    assert_eq!(metrics.u64_field("jobs_completed").unwrap(), 2);
    assert!(metrics.u64_field("store_entries").unwrap() > 0);
    let output = moard(&["client", "metrics", "--addr", addr]);
    let text = stdout(&output);
    assert!(
        text.contains("moard_requests_total{op=\"analyze\"} 2"),
        "{text}"
    );
    assert!(text.contains("moard_warm_harnesses 1"), "{text}");

    // Cancelling an unknown job is a typed error, not a crash.
    let output = moard(&["client", "cancel", "999", "--addr", addr]);
    assert_eq!(output.status.code(), Some(1));

    let output = moard(&["client", "shutdown", "--addr", addr]);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let status = daemon.wait().expect("the daemon exits after shutdown");
    assert!(status.success(), "daemon exit: {status}");
    let _ = std::fs::remove_dir_all(&store);
}
