//! Integration tests of the `moard sweep` subcommand: the JSON and text
//! output surfaces, the resume-from-a-partial-store flow, and the error
//! paths — all through the real binary.

use moard_core::StudyReport;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn moard(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_moard"))
        .args(args)
        .output()
        .expect("the moard binary runs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8(output.stdout.clone()).expect("stdout is UTF-8")
}

fn stderr(output: &Output) -> String {
    String::from_utf8(output.stderr.clone()).expect("stderr is UTF-8")
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("moard-cli-sweep-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A fast sweep: MM's one target object, heavy striding, a small DFI cap.
const QUICK: &[&str] = &["sweep", "mm", "--stride", "32", "--max-dfi", "100"];

#[test]
fn json_output_is_a_valid_study_report() {
    let output = moard(&[&["--format", "json"], QUICK].concat());
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let report = StudyReport::from_json_str(&stdout(&output)).expect("stdout parses");
    assert_eq!(report.entries.len(), 1);
    assert_eq!(report.entries[0].workload, "MM");
    assert_eq!(report.entries[0].object, "C");
    assert_eq!(report.entries[0].config.site_stride, 32);
    assert_eq!(report.entries[0].config.max_dfi_per_object, Some(100));
    assert!(report.rfi.is_empty());
    // The analysis really ran.
    assert!(report.entries[0].advf.sites_analyzed > 0);
}

#[test]
fn text_output_renders_the_study_table() {
    let output = moard(QUICK);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("study fingerprint"), "{text}");
    assert!(text.contains("tasks"), "{text}");
    assert!(text.contains("MM"), "{text}");
    assert!(text.contains("aDVF"), "{text}");
    // One task, executed fresh (no store involved).
    assert!(text.contains("1 executed, 0 cache hits"), "{text}");
}

#[test]
fn rfi_leg_appears_in_both_formats() {
    let args = &[QUICK, &["--rfi-tests", "20", "--rfi-seed", "9"]].concat();
    let output = moard(args);
    assert!(output.status.success(), "stderr: {}", stderr(&output));
    assert!(stdout(&output).contains("RFI validation leg"));
    let output = moard(&[&["--format", "json"], args.as_slice()].concat());
    let report = StudyReport::from_json_str(&stdout(&output)).unwrap();
    assert_eq!(report.rfi.len(), 1);
    assert_eq!(report.rfi[0].summary.tests, 20);
    assert_eq!(report.rfi[0].summary.seed, 9);
    assert_eq!(report.rfi[0].summary.runs(), 20);
}

#[test]
fn resume_after_a_partial_store_is_byte_identical() {
    let store = temp_dir("resume");
    let store_arg = store.to_str().unwrap();
    let base = [
        &["--format", "json"],
        QUICK,
        &["--k", "20,50", "--store", store_arg],
    ]
    .concat();

    // Cold run fills the store (two grid points → two task documents).
    let cold = moard(&base);
    assert!(cold.status.success(), "stderr: {}", stderr(&cold));
    let mut files = list_store(&store);
    assert_eq!(files.len(), 2);

    // Simulate a sweep killed after one completed task: drop one document.
    files.sort();
    std::fs::remove_file(&files[0]).unwrap();
    assert_eq!(list_store(&store).len(), 1);

    // The resumed sweep recomputes only the missing task and reproduces the
    // cold report byte for byte.
    let resumed = moard(&[base.as_slice(), &["--resume"]].concat());
    assert!(resumed.status.success(), "stderr: {}", stderr(&resumed));
    assert_eq!(stdout(&resumed), stdout(&cold));
    // …and completes the store again.
    assert_eq!(list_store(&store).len(), 2);

    // Text mode reports the cache hits of a fully resumed run.
    let full = moard(&[QUICK, &["--k", "20,50", "--store", store_arg, "--resume"]].concat());
    assert!(full.status.success());
    assert!(
        stdout(&full).contains("0 executed, 2 cache hits, 0 harnesses prepared"),
        "{}",
        stdout(&full)
    );
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn unknown_workload_is_a_typed_failure() {
    let output = moard(&["sweep", "warp-drive"]);
    assert_eq!(output.status.code(), Some(1));
    let err = stderr(&output);
    assert!(err.contains("unknown workload"), "{err}");
    assert!(err.contains("warp-drive"), "{err}");
    // The list of valid names is offered.
    assert!(err.contains("MM"), "{err}");
}

#[test]
fn unknown_object_and_bad_flags_are_typed_failures() {
    let output = moard(&["sweep", "mm", "--objects", "no-such-object"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(
        stderr(&output).contains("no data object"),
        "{}",
        stderr(&output)
    );

    let output = moard(&["sweep", "mm", "--resume"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(stderr(&output).contains("--store"), "{}", stderr(&output));

    let output = moard(&["sweep", "mm", "--stride", "a,b"]);
    assert_eq!(output.status.code(), Some(1));

    let output = moard(&["sweep", "mm", "--exhuastive"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(
        stderr(&output).contains("unknown flag"),
        "{}",
        stderr(&output)
    );

    // A following flag token must not be swallowed as a value: this must
    // error, not create a store directory literally named `--resume`.
    let output = moard(&["sweep", "mm", "--store", "--resume"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(
        stderr(&output).contains("requires a value"),
        "{}",
        stderr(&output)
    );
    assert!(!Path::new("--resume").exists());

    // Workloads given both positionally and via --workloads would silently
    // drop one of the two selections; it must be rejected instead.
    let output = moard(&["sweep", "lulesh", "--workloads", "table1"]);
    assert_eq!(output.status.code(), Some(1));
    assert!(
        stderr(&output).contains("use one form"),
        "{}",
        stderr(&output)
    );
}

fn list_store(dir: &Path) -> Vec<PathBuf> {
    std::fs::read_dir(dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect()
}
