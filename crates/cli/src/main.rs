//! `moard` — command-line interface to the MOARD reproduction.
//!
//! Subcommands:
//!
//! * `moard list` — Table I: workloads, code segments, target data objects;
//! * `moard analyze <workload> [object] [--k N] [--no-dfi] [--stride N]` —
//!   aDVF analysis with the three-level and operation-kind breakdowns;
//! * `moard inject <workload> <object> [--tests N] [--exhaustive]` —
//!   random or (strided) exhaustive fault-injection campaign;
//! * `moard rank <workload>` — rank the workload's target objects by aDVF.

use moard_core::AnalysisConfig;
use moard_inject::{Parallelism, RfiConfig, WorkloadHarness};

fn usage() -> ! {
    eprintln!("usage: moard <list|analyze|inject|rank> [args]");
    eprintln!("  moard list");
    eprintln!("  moard analyze <workload> [object] [--k N] [--stride N] [--no-dfi]");
    eprintln!("  moard inject  <workload> <object> [--tests N] [--exhaustive]");
    eprintln!("  moard rank    <workload> [--stride N]");
    std::process::exit(2);
}

fn flag_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn analysis_config(args: &[String]) -> AnalysisConfig {
    let mut config = AnalysisConfig {
        site_stride: flag_value(args, "--stride").unwrap_or(4) as usize,
        max_dfi_per_object: Some(flag_value(args, "--max-dfi").unwrap_or(5_000)),
        ..Default::default()
    };
    if let Some(k) = flag_value(args, "--k") {
        config.propagation_window = k as usize;
    }
    config
}

fn print_report(report: &moard_core::AdvfReport) {
    let (op, prop, alg) = report.accumulator.level_breakdown();
    let (ow, os, lc) = report.accumulator.kind_breakdown();
    println!("workload          : {}", report.workload);
    println!("data object       : {}", report.object);
    println!("aDVF              : {:.4}", report.advf());
    println!("  operation level : {op:.4} (overwriting {ow:.4}, overshadowing {os:.4}, logic/compare {lc:.4})");
    println!("  propagation     : {prop:.4}");
    println!("  algorithm       : {alg:.4}");
    println!("sites analyzed    : {}", report.sites_analyzed);
    println!(
        "DFI runs          : {} ({} cache hits, {} resolved analytically)",
        report.dfi_runs, report.dfi_cache_hits, report.resolved_analytically
    );
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "list" => {
            println!(
                "{:<8} {:<34} {:<30} {}",
                "name", "description", "code segment", "target data objects"
            );
            for w in moard_workloads::table1_workloads() {
                let info = moard_workloads::WorkloadInfo::of(w.as_ref());
                println!(
                    "{:<8} {:<34} {:<30} {}",
                    info.name,
                    info.description,
                    info.code_segment,
                    info.targets.join(", ")
                );
            }
            println!("{:<8} {:<34} {:<30} C", "MM", "Dense matrix multiply (case study)", "matmul");
            println!("{:<8} {:<34} {:<30} xe", "PF", "Particle filter (case study)", "particleFilter");
        }
        "analyze" => {
            let Some(workload) = args.get(1) else { usage() };
            let harness = WorkloadHarness::by_name(workload).unwrap_or_else(|| {
                eprintln!("unknown workload `{workload}` (try `moard list`)");
                std::process::exit(1);
            });
            let config = analysis_config(&args);
            let no_dfi = args.iter().any(|a| a == "--no-dfi");
            let objects: Vec<String> = match args.get(2).filter(|a| !a.starts_with("--")) {
                Some(obj) => vec![obj.clone()],
                None => harness
                    .workload()
                    .target_objects()
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            };
            for obj in objects {
                let report = if no_dfi {
                    harness.analyze_without_dfi(&obj, config.clone())
                } else {
                    harness.analyze(&obj, config.clone())
                };
                print_report(&report);
            }
        }
        "inject" => {
            let (Some(workload), Some(object)) = (args.get(1), args.get(2)) else { usage() };
            let harness = WorkloadHarness::by_name(workload).unwrap_or_else(|| {
                eprintln!("unknown workload `{workload}`");
                std::process::exit(1);
            });
            let stats = if args.iter().any(|a| a == "--exhaustive") {
                harness.exhaustive_with_budget(object, flag_value(&args, "--budget").unwrap_or(5_000))
            } else {
                harness.rfi(
                    object,
                    &RfiConfig {
                        tests: flag_value(&args, "--tests").unwrap_or(1_000) as usize,
                        seed: flag_value(&args, "--seed").unwrap_or(0xF1F1),
                        parallelism: Parallelism::Auto,
                    },
                )
            };
            println!("workload      : {}", harness.workload().name());
            println!("data object   : {object}");
            println!("injections    : {}", stats.runs);
            println!("identical     : {}", stats.identical);
            println!("acceptable    : {}", stats.acceptable);
            println!("incorrect     : {}", stats.incorrect);
            println!("crashed       : {}", stats.crashed);
            println!("success rate  : {:.4}", stats.success_rate());
            println!("margin (95%)  : {:.4}", stats.margin_of_error(0.95));
        }
        "rank" => {
            let Some(workload) = args.get(1) else { usage() };
            let harness = WorkloadHarness::by_name(workload).unwrap_or_else(|| {
                eprintln!("unknown workload `{workload}`");
                std::process::exit(1);
            });
            let config = analysis_config(&args);
            let mut reports = harness.analyze_targets(&config);
            reports.sort_by(|a, b| a.advf().partial_cmp(&b.advf()).unwrap());
            println!(
                "data objects of {} from most to least vulnerable:",
                harness.workload().name()
            );
            for r in reports {
                println!("  {:<14} aDVF = {:.4}", r.object, r.advf());
            }
        }
        _ => usage(),
    }
}
