//! `moard` — JSON-first command-line interface to the MOARD reproduction.
//!
//! Subcommands:
//!
//! * `moard list` — Table I plus case studies and ABFT variants;
//! * `moard analyze <workload> [object] [--k N] [--stride N] [--max-dfi N]
//!   [--no-dfi] [--seq]` — aDVF analysis with the three-level and
//!   operation-kind breakdowns;
//! * `moard report <workload> [object...]` — the full serialized session
//!   report (always JSON);
//! * `moard sweep [--workloads all|table1|w1,w2] [--objects o1,o2] [--k
//!   N,N…] [--stride N,N…] [--max-dfi N|unbounded,…] [--rfi-tests N,N…]
//!   [--store DIR] [--resume]` — the study driver: the full workload ×
//!   object × parameter-grid campaign in one run, scheduled per task across
//!   the worker pool and folded into a versioned `StudyReport`.  With
//!   `--store DIR` every completed task is persisted; a killed sweep
//!   re-run with `--resume` folds the stored tasks as cache hits and emits
//!   a byte-identical report;
//! * `moard validate [--workloads SEL] [--objects o1,o2] [--margin F]
//!   [--max-trials N] [--confidence 90|95|99] [--seed N] [--store DIR]
//!   [--resume]` — the model-validation engine: one **adaptive**
//!   random-fault-injection campaign per (workload, object) cell, stopped
//!   once the Wilson interval is narrower than the target margin (or at the
//!   trial cap), compared against the cell's aDVF prediction with
//!   agree/disagree verdicts and per-workload rank correlations.  Campaigns
//!   are shard-deterministic: the report is identical for any thread count
//!   and resumes byte-identically from a killed run via `--store/--resume`;
//! * `moard inject <workload> <object> [--tests N] [--exhaustive]` — random
//!   or (strided) exhaustive fault-injection campaign;
//! * `moard minimize <workload> <object> [--report FILE] [--site REC:SLOT]
//!   [--mask b+b...] [--window N] [--expect CLASS] [--emit-scenario DIR]` —
//!   delta-debug a reproducing failure down to a 1-minimal scenario spec
//!   (ddmin over sites and mask bits, bisection over the replay window),
//!   optionally frozen as a JSON scenario under `tests/scenarios/`;
//! * `moard rank <workload>` — rank the workload's target objects by aDVF;
//! * `moard serve [--addr HOST:PORT] [--threads N] [--store DIR]` — the
//!   long-running analysis daemon: analyze/sweep/validate jobs over the
//!   length-framed JSON protocol, scheduled by priority across a worker
//!   pool, with one warm harness per workload and repeat jobs answered
//!   from the shared result store;
//! * `moard client <op> --addr HOST:PORT` — talk to a running daemon:
//!   `ping`, `metrics`, `cancel <job>`, `shutdown`, or submit `analyze`/
//!   `sweep`/`validate`/`minimize` jobs built from the same flags as the
//!   local subcommands.
//!
//! `--format json|text` (global) switches every subcommand between
//! machine-consumable JSON on the stable versioned schema (see
//! `docs/REPORT_SCHEMA.md`) and the human-readable tables.  All errors are
//! typed [`MoardError`]s rendered to stderr with exit code 1; nothing in
//! this binary panics on user input.

use moard_core::{MoardError, StudyReport, ValidationReport};
use moard_inject::{
    MinimizeReport, MinimizeSpec, ObjectSelector, Parallelism, RfiConfig, Session, SessionReport,
    StudyRunner, StudySpec, SweepStats, ValidationRunner, ValidationSpec, ValidationStats,
    WorkloadSelector,
};
use moard_json::{Json, ToJson};
use moard_workloads::{Registry, WorkloadRegistry};

/// `println!` that ignores a closed stdout (e.g. `moard list | head -1`)
/// instead of panicking on the broken pipe.
macro_rules! out {
    ($($arg:tt)*) => {{
        use std::io::Write;
        let _ = writeln!(std::io::stdout(), $($arg)*);
    }};
}

const USAGE: &str = "usage: moard [--format json|text] <command> [args]
  moard list
  moard analyze <workload> [object] [--k N] [--stride N] [--max-dfi N] [--patterns P]
                [--no-dfi] [--seq] [--trace-backend B] [--replay-batch N|off]
  moard report  <workload> [object...] [--k N] [--stride N] [--max-dfi N] [--patterns P]
                [--no-dfi] [--trace-backend B] [--replay-batch N|off]
  moard sweep   [workload...] [--workloads all|table1|w1,w2] [--objects o1,o2]
                [--k N,N...] [--stride N,N...] [--max-dfi N|unbounded,...]
                [--patterns P,P...] [--no-dfi]
                [--rfi-tests N,N...] [--rfi-seed N] [--store DIR] [--resume]
                [--seq | --threads N] [--trace-backend B] [--replay-batch N|off]
  moard validate [workload...] [--workloads all|table1|w1,w2] [--objects o1,o2]
                [--k N] [--stride N] [--max-dfi N|unbounded] [--patterns P] [--no-dfi]
                [--confidence 90|95|99] [--margin F] [--max-trials N] [--seed N]
                [--tolerance F] [--store DIR] [--resume] [--seq | --threads N]
                [--emit-scenarios DIR] [--trace-backend B] [--replay-batch N|off]
  moard inject  <workload> <object> [--tests N] [--seed N] [--patterns P]
                [--exhaustive] [--budget N]
  moard minimize <workload> <object> [--report FILE] [--site REC:SLOT]
                [--mask b+b...] [--window N] [--stride N] [--patterns P]
                [--expect CLASS] [--seed N] [--name NAME] [--emit-scenario DIR]
  moard rank    <workload> [--k N] [--stride N] [--max-dfi N] [--patterns P]
  moard serve   [--addr HOST:PORT] [--port N] [--threads N] [--store DIR]
                [--trace-backend B] [--replay-batch N|off]
  moard client  <ping|metrics|cancel <job>|shutdown> --addr HOST:PORT
  moard client  <analyze|sweep|validate|minimize> --addr HOST:PORT
                [--priority low|normal|high] [job flags as for the local
                subcommand]

options:
  --format json|text   output format (default: text; `report` is always JSON)
  --stride N           analyze every N-th participation site (default 4)
  --max-dfi N          cap deterministic fault injections per object (default 5000)
  --k N                propagation window (default 50)
  --patterns P         error-pattern set: single-bit (default),
                       adjacent-bits:N (N-bit bursts, paper sec. VII-B),
                       separated-pair:N (two bits N apart), or
                       explicit:b+b,b,... (sweep accepts a comma list grid)
  --no-dfi             purely analytical lower bound (no fault injection)
  --seq                analyze objects sequentially (default: parallel)
  --trace-backend B    trace storage: memory (default) or paged[:DIR] — paged
                       streams fixed-size on-disk segments so traces never
                       need to fit in RAM; reports are bit-identical
  --replay-batch N|off lane-batched replay width 1..=64 (default 64): propagate
                       up to N faults per trace walk; `off` selects the
                       sequential one-replay-per-walk engine.  Verdicts are
                       bit-identical either way

sweep options (grid flags take comma-separated lists; the sweep covers the
full workload x object x grid cross-product):
  --workloads SEL      all (default), table1, or a comma-separated name list
  --objects o1,o2      explicit data objects (default: each workload's targets)
  --rfi-tests N,N...   attach a random-fault-injection validation leg
  --rfi-seed N         base RNG seed of the RFI leg (default 61937)
  --store DIR          persist every completed task to DIR
  --resume             fold tasks already in --store DIR as cache hits

validate options (one adaptive RFI campaign per (workload, object) cell,
site-matched to the aDVF leg's stride; see docs/ARCHITECTURE.md):
  --confidence 90|95|99  confidence level of every interval (default 95)
  --margin F           stop a cell once its Wilson half-width <= F (default 0.05)
  --max-trials N       per-cell trial cap (default 2000)
  --seed N             base RNG seed of the shard streams (default 61937)
  --tolerance F        model-error allowance of the verdict (default 0.35)
  --emit-scenarios DIR auto-minimize every model-optimistic cell into a
                       scenario spec under DIR (see `moard minimize`)

minimize options (delta-debug a reproducing failure to a 1-minimal scenario
spec; see docs/ARCHITECTURE.md):
  --report FILE        adopt stride/patterns/window/seed from a validation
                       report (the positionals select the cell)
  --site REC:SLOT      explicit starting site: `42:operand:1` or `7:store-dest`
                       (default: scan the strided population)
  --mask b+b...        explicit starting bit mask as `+`-joined bit positions,
                       e.g. `3+4` (default: scan `--patterns`)
  --window N           starting propagation window of the model leg (default 50)
  --expect CLASS       outcome class to reproduce: identical, acceptable,
                       incorrect, or crashed (default: the first incorrect or
                       crashed outcome found)
  --name NAME          scenario name (default `<workload>-<object>-<outcome>`)
  --emit-scenario DIR  write the minimal reproducer as DIR/<name>.json

serve / client options (the framed JSON protocol; see docs/ARCHITECTURE.md):
  --threads N          worker threads, N >= 1 (serve: pool size; sweep and
                       validate: task parallelism; conflicts with --seq)
  --addr HOST:PORT     serve: bind address (default 127.0.0.1:7411; port 0 =
                       ephemeral); client: daemon address (required)
  --port N             serve shorthand for --addr 127.0.0.1:N
  --priority P         client job priority: low, normal (default), or high";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

struct Cli {
    args: Vec<String>,
    format: Format,
    registry: Registry,
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let format = match take_flag_value(&mut args, "--format") {
        Ok(None) => Format::Text,
        Ok(Some(v)) if v == "text" => Format::Text,
        Ok(Some(v)) if v == "json" => Format::Json,
        Ok(Some(other)) => {
            eprintln!("unknown format `{other}` (expected `json` or `text`)");
            std::process::exit(2);
        }
        Err(()) => {
            eprintln!("flag `--format` requires a value (`json` or `text`)");
            std::process::exit(2);
        }
    };
    let cli = Cli {
        args,
        format,
        registry: moard_abft::registry_with_abft(),
    };
    match run(&cli) {
        Ok(()) => {}
        Err(CliError::Usage) => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
        Err(CliError::Moard(e)) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

enum CliError {
    Usage,
    Moard(MoardError),
}

impl From<MoardError> for CliError {
    fn from(e: MoardError) -> Self {
        CliError::Moard(e)
    }
}

fn run(cli: &Cli) -> Result<(), CliError> {
    let Some(command) = cli.args.first().map(String::as_str) else {
        return Err(CliError::Usage);
    };
    let Some(allowed) = allowed_flags(command) else {
        return Err(CliError::Usage);
    };
    check_flags(command, allowed, &cli.args)?;
    match command {
        "list" => cmd_list(cli),
        "analyze" => cmd_analyze(cli),
        "report" => cmd_report(cli),
        "sweep" => cmd_sweep(cli),
        "validate" => cmd_validate(cli),
        "inject" => cmd_inject(cli),
        "minimize" => cmd_minimize(cli),
        "rank" => cmd_rank(cli),
        "serve" => cmd_serve(cli),
        "client" => cmd_client(cli),
        _ => unreachable!("allowed_flags resolved the command"),
    }
}

/// Flags that take a value.
const VALUED_FLAGS: &[&str] = &[
    "--k",
    "--stride",
    "--max-dfi",
    "--tests",
    "--seed",
    "--budget",
    "--workloads",
    "--objects",
    "--rfi-tests",
    "--rfi-seed",
    "--store",
    "--confidence",
    "--margin",
    "--max-trials",
    "--tolerance",
    "--patterns",
    "--threads",
    "--addr",
    "--port",
    "--priority",
    "--report",
    "--site",
    "--mask",
    "--window",
    "--expect",
    "--name",
    "--emit-scenario",
    "--emit-scenarios",
    "--trace-backend",
    "--replay-batch",
];
/// Boolean flags.
const BOOL_FLAGS: &[&str] = &["--no-dfi", "--seq", "--exhaustive", "--resume"];

/// The flags each subcommand actually reads, or `None` for an unknown
/// subcommand.  A flag outside its command's list is an error even though
/// another command accepts it — `moard sweep --max-trials 10` must not
/// silently run an uncapped sweep.
fn allowed_flags(command: &str) -> Option<&'static [&'static str]> {
    const ANALYSIS: &[&str] = &[
        "--k",
        "--stride",
        "--max-dfi",
        "--patterns",
        "--no-dfi",
        "--seq",
        "--trace-backend",
        "--replay-batch",
    ];
    const SWEEP: &[&str] = &[
        "--k",
        "--stride",
        "--max-dfi",
        "--patterns",
        "--no-dfi",
        "--seq",
        "--workloads",
        "--objects",
        "--rfi-tests",
        "--rfi-seed",
        "--store",
        "--resume",
        "--threads",
        "--trace-backend",
        "--replay-batch",
    ];
    const VALIDATE: &[&str] = &[
        "--k",
        "--stride",
        "--max-dfi",
        "--patterns",
        "--no-dfi",
        "--seq",
        "--workloads",
        "--objects",
        "--confidence",
        "--margin",
        "--max-trials",
        "--seed",
        "--tolerance",
        "--store",
        "--resume",
        "--threads",
        "--emit-scenarios",
        "--trace-backend",
        "--replay-batch",
    ];
    const INJECT: &[&str] = &[
        "--k",
        "--stride",
        "--max-dfi",
        "--patterns",
        "--no-dfi",
        "--seq",
        "--tests",
        "--seed",
        "--exhaustive",
        "--budget",
    ];
    const MINIMIZE: &[&str] = &[
        "--report",
        "--site",
        "--mask",
        "--window",
        "--stride",
        "--patterns",
        "--expect",
        "--seed",
        "--name",
        "--emit-scenario",
    ];
    const SERVE: &[&str] = &[
        "--addr",
        "--port",
        "--threads",
        "--store",
        "--trace-backend",
        "--replay-batch",
    ];
    // The union of every job the client can submit, plus the connection
    // flags.  No `--seq`/`--threads` (the daemon's pool decides), no
    // `--store`/`--resume` (the store lives with the daemon).
    const CLIENT: &[&str] = &[
        "--addr",
        "--priority",
        "--k",
        "--stride",
        "--max-dfi",
        "--patterns",
        "--no-dfi",
        "--workloads",
        "--objects",
        "--rfi-tests",
        "--rfi-seed",
        "--confidence",
        "--margin",
        "--max-trials",
        "--seed",
        "--tolerance",
        "--report",
        "--site",
        "--mask",
        "--window",
        "--expect",
        "--name",
    ];
    match command {
        "list" => Some(&[]),
        "analyze" | "report" | "rank" => Some(ANALYSIS),
        "sweep" => Some(SWEEP),
        "validate" => Some(VALIDATE),
        "inject" => Some(INJECT),
        "minimize" => Some(MINIMIZE),
        "serve" => Some(SERVE),
        "client" => Some(CLIENT),
        _ => None,
    }
}

/// Reject unknown `--` flags (a typo — `--no-dfl`, `--exhuastive`,
/// `--format=json` — must not silently run the analysis under settings the
/// user did not ask for) and flags the current subcommand does not read
/// (a misplaced flag would be silently dropped).
fn check_flags(command: &str, allowed: &[&str], args: &[String]) -> Result<(), CliError> {
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if !a.starts_with("--") {
            continue;
        }
        let flag = a.as_str();
        if VALUED_FLAGS.contains(&flag) {
            skip = true;
        } else if !BOOL_FLAGS.contains(&flag) {
            return Err(CliError::Moard(MoardError::InvalidConfig(format!(
                "unknown flag `{a}` (see `moard` usage; note `--flag value`, not `--flag=value`)"
            ))));
        }
        if !allowed.contains(&flag) {
            return Err(CliError::Moard(MoardError::InvalidConfig(format!(
                "flag `{flag}` is not valid for `moard {command}` (see `moard` usage)"
            ))));
        }
    }
    Ok(())
}

/// Value of `--flag <value>`, removed from `args` if present.  A dangling
/// flag with no value is `Err` — it must not silently fall back to the
/// default.
fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, ()> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if i + 1 >= args.len() {
        return Err(());
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Ok(Some(value))
}

/// Value of a numeric `--flag N`.  A present flag with a missing or
/// unparseable value is a hard error — silently falling back to a default
/// would run the analysis under settings the user did not ask for.
fn flag_value(args: &[String], flag: &str) -> Result<Option<u64>, MoardError> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    let value = args.get(i + 1).ok_or_else(|| {
        MoardError::InvalidConfig(format!("flag `{flag}` requires a numeric value"))
    })?;
    value.parse().map(Some).map_err(|_| {
        MoardError::InvalidConfig(format!(
            "flag `{flag}` expects an unsigned integer, got `{value}`"
        ))
    })
}

/// Value of a string-valued `--flag value` (non-removing).  A present flag
/// with a missing value is a hard error — and so is a following `--token`,
/// which would otherwise be swallowed as the value (`--store --resume`
/// must not create a directory literally named `--resume`).
fn str_flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, MoardError> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    match args.get(i + 1) {
        Some(value) if !value.starts_with("--") => Ok(Some(value.as_str())),
        _ => Err(MoardError::InvalidConfig(format!(
            "flag `{flag}` requires a value"
        ))),
    }
}

/// One `--max-dfi` item: `unbounded`/`none` lifts the cap, anything else
/// must be an unsigned cap (shared by `sweep`'s grid list and `validate`'s
/// single value).
fn parse_max_dfi(item: &str) -> Result<Option<u64>, MoardError> {
    match item.trim() {
        "unbounded" | "none" => Ok(None),
        number => number.parse::<u64>().map(Some).map_err(|_| {
            MoardError::InvalidConfig(format!(
                "flag `--max-dfi` expects unsigned integers or `unbounded`, got `{number}`"
            ))
        }),
    }
}

/// One `--patterns` item, parsed via the canonical pattern-set grammar
/// (`single-bit`, `adjacent-bits:N`, `separated-pair:N`,
/// `explicit:b+b,...`).
fn parse_patterns(item: &str) -> Result<moard_core::ErrorPatternSet, MoardError> {
    moard_core::ErrorPatternSet::from_canonical(item.trim()).ok_or_else(|| {
        MoardError::InvalidConfig(format!(
            "flag `--patterns` expects `single-bit`, `adjacent-bits:N`, `separated-pair:N` \
             (N >= 1), or `explicit:b+b,...` with strictly increasing bits, got `{item}`"
        ))
    })
}

/// The single-valued `--patterns P` of analyze/report/rank/validate/inject
/// (`sweep` takes a comma-separated grid list instead).
fn patterns_flag(args: &[String]) -> Result<Option<moard_core::ErrorPatternSet>, MoardError> {
    match str_flag_value(args, "--patterns")? {
        None => Ok(None),
        Some(text) => parse_patterns(text).map(Some),
    }
}

/// The shared `--trace-backend memory|paged[:DIR]` flag of the analysis,
/// sweep, validate, and serve subcommands.  Purely an execution-resource
/// choice — never part of any fingerprint, and reports are bit-identical
/// across backends.
fn trace_backend_flag(args: &[String]) -> Result<Option<moard_vm::TraceBackendSpec>, MoardError> {
    match str_flag_value(args, "--trace-backend")? {
        None => Ok(None),
        Some(text) => moard_vm::TraceBackendSpec::parse(text)
            .map(Some)
            .map_err(|e| MoardError::InvalidConfig(format!("flag `--trace-backend`: {e}"))),
    }
}

/// The shared `--replay-batch N|off` flag of the analysis, sweep, validate,
/// and serve subcommands.  Like `--trace-backend`, purely an
/// execution-resource choice — never part of any fingerprint, and verdicts
/// are bit-identical across widths.
fn replay_batch_flag(args: &[String]) -> Result<Option<moard_core::ReplayBatch>, MoardError> {
    match str_flag_value(args, "--replay-batch")? {
        None => Ok(None),
        Some(text) => moard_core::ReplayBatch::parse_flag(text)
            .map(Some)
            .map_err(|e| MoardError::InvalidConfig(format!("flag `--replay-batch`: {e}"))),
    }
}

/// Value of a fractional `--flag F` (e.g. `--margin 0.05`).
fn float_flag_value(args: &[String], flag: &str) -> Result<Option<f64>, MoardError> {
    let Some(text) = str_flag_value(args, flag)? else {
        return Ok(None);
    };
    text.parse().map(Some).map_err(|_| {
        MoardError::InvalidConfig(format!("flag `{flag}` expects a number, got `{text}`"))
    })
}

/// The shared `--threads N` flag of `serve`, `sweep`, and `validate`: an
/// explicit worker count.  Zero is a typed error, not a silent fallback —
/// a zero-thread pool could never run a job, and the user who typed it
/// probably meant `--seq`.
fn threads_flag(args: &[String]) -> Result<Option<usize>, MoardError> {
    match flag_value(args, "--threads")? {
        Some(0) => Err(MoardError::InvalidConfig(
            "flag `--threads` expects an integer >= 1 (a zero-thread pool could never run a \
             job; use `--seq` for sequential execution)"
                .into(),
        )),
        Some(n) => Ok(Some(n as usize)),
        None => Ok(None),
    }
}

/// The `--seq | --threads N` choice of `sweep` and `validate`.  Giving both
/// is a contradiction the CLI refuses rather than resolves.
fn parallelism_flags(args: &[String]) -> Result<Option<Parallelism>, MoardError> {
    let threads = threads_flag(args)?;
    if has_flag(args, "--seq") {
        return match threads {
            Some(_) => Err(MoardError::InvalidConfig(
                "`--seq` and `--threads` contradict each other; use one".into(),
            )),
            None => Ok(Some(Parallelism::Sequential)),
        };
    }
    Ok(threads.map(Parallelism::Fixed))
}

/// Value of a comma-separated numeric list `--flag N,N,...`.
fn flag_list(args: &[String], flag: &str) -> Result<Option<Vec<u64>>, MoardError> {
    let Some(text) = str_flag_value(args, flag)? else {
        return Ok(None);
    };
    text.split(',')
        .map(|item| {
            item.trim().parse::<u64>().map_err(|_| {
                MoardError::InvalidConfig(format!(
                    "flag `{flag}` expects comma-separated unsigned integers, got `{item}`"
                ))
            })
        })
        .collect::<Result<Vec<_>, _>>()
        .map(Some)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Positional (non-flag) arguments after the subcommand, skipping flag values.
fn positionals(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in &args[1..] {
        if skip {
            skip = false;
            continue;
        }
        if VALUED_FLAGS.contains(&a.as_str()) {
            skip = true;
            continue;
        }
        if a.starts_with("--") {
            continue;
        }
        out.push(a);
    }
    out
}

/// Session builder with the CLI's analysis settings applied.
fn configured_session(
    cli: &Cli,
    workload: &str,
) -> Result<moard_inject::SessionBuilder, MoardError> {
    let mut builder = Session::for_workload_in(&cli.registry, workload)?
        .stride(flag_value(&cli.args, "--stride")?.unwrap_or(4) as usize)
        .max_dfi(flag_value(&cli.args, "--max-dfi")?.unwrap_or(5_000));
    if let Some(k) = flag_value(&cli.args, "--k")? {
        builder = builder.window(k as usize);
    }
    if let Some(patterns) = patterns_flag(&cli.args)? {
        builder = builder.patterns(patterns);
    }
    if has_flag(&cli.args, "--no-dfi") {
        builder = builder.without_dfi();
    }
    if has_flag(&cli.args, "--seq") {
        builder = builder.parallelism(Parallelism::Sequential);
    }
    if let Some(backend) = trace_backend_flag(&cli.args)? {
        builder = builder.trace_backend(backend);
    }
    if let Some(batch) = replay_batch_flag(&cli.args)? {
        builder = builder.replay_batch(batch);
    }
    Ok(builder)
}

fn session_for_positionals(cli: &Cli) -> Result<SessionReport, CliError> {
    let pos = positionals(&cli.args);
    let Some(workload) = pos.first() else {
        return Err(CliError::Usage);
    };
    let mut builder = configured_session(cli, workload)?;
    for object in &pos[1..] {
        builder = builder.object(object.as_str());
    }
    Ok(builder.run()?)
}

fn cmd_list(cli: &Cli) -> Result<(), CliError> {
    let descriptors = cli.registry.descriptors();
    match cli.format {
        Format::Json => {
            let doc = Json::object([
                ("schema_version", Json::from(moard_core::SCHEMA_VERSION)),
                (
                    "workloads",
                    Json::array(descriptors.iter().map(|d| {
                        Json::object([
                            ("name", Json::from(d.name)),
                            (
                                "aliases",
                                Json::array(d.aliases.iter().map(|a| Json::from(*a))),
                            ),
                            ("description", Json::from(d.description)),
                            ("code_segment", Json::from(d.code_segment)),
                            (
                                "targets",
                                Json::array(d.targets.iter().map(|t| Json::from(*t))),
                            ),
                            ("table1", Json::from(d.table1)),
                        ])
                    })),
                ),
            ]);
            out!("{}", doc.to_pretty());
        }
        Format::Text => {
            out!(
                "{:<8} {:<55} {:<30} target data objects",
                "name",
                "description",
                "code segment"
            );
            for d in &descriptors {
                out!(
                    "{:<8} {:<55} {:<30} {}",
                    d.name,
                    d.description,
                    d.code_segment,
                    d.targets.join(", ")
                );
            }
        }
    }
    Ok(())
}

fn cmd_analyze(cli: &Cli) -> Result<(), CliError> {
    let report = session_for_positionals(cli)?;
    match cli.format {
        Format::Json => out!("{}", report.to_json().to_pretty()),
        Format::Text => {
            for r in &report.reports {
                print_report(r);
            }
        }
    }
    Ok(())
}

fn cmd_report(cli: &Cli) -> Result<(), CliError> {
    // `report` exists to feed machines; it is JSON regardless of --format.
    let report = session_for_positionals(cli)?;
    out!("{}", report.to_json().to_pretty());
    Ok(())
}

/// The [`WorkloadSelector`] described by `--workloads` and/or positional
/// workload names (shared by `sweep` and `validate`, locally and over the
/// daemon protocol — `args[0]` is the subcommand or client op).
fn workload_selector(args: &[String]) -> Result<WorkloadSelector, MoardError> {
    let pos = positionals(args);
    Ok(match str_flag_value(args, "--workloads")? {
        // Giving both forms would silently drop one of them; reject instead.
        Some(_) if !pos.is_empty() => {
            return Err(MoardError::InvalidConfig(format!(
                "workloads given both positionally (`{}`) and via `--workloads`; use one form",
                pos.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(" ")
            )))
        }
        Some("all") => WorkloadSelector::All,
        Some("table1") => WorkloadSelector::Table1,
        Some(list) => WorkloadSelector::Named(list.split(',').map(|s| s.trim().into()).collect()),
        None if !pos.is_empty() => WorkloadSelector::Named(
            pos.iter()
                .flat_map(|s| s.split(','))
                .map(|s| s.trim().to_string())
                .collect(),
        ),
        None => WorkloadSelector::All,
    })
}

/// Build the [`StudySpec`] described by the sweep command line
/// (`args[0]` is the subcommand or client op).
fn sweep_spec(args: &[String]) -> Result<StudySpec, MoardError> {
    let workloads = workload_selector(args)?;
    let mut spec = StudySpec::default()
        .workloads(workloads)
        .windows(
            flag_list(args, "--k")?
                .unwrap_or_else(|| vec![50])
                .into_iter()
                .map(|v| v as usize)
                .collect(),
        )
        .strides(
            flag_list(args, "--stride")?
                .unwrap_or_else(|| vec![4])
                .into_iter()
                .map(|v| v as usize)
                .collect(),
        )
        .max_dfis(match str_flag_value(args, "--max-dfi")? {
            None => vec![Some(5_000)],
            Some(list) => list
                .split(',')
                .map(parse_max_dfi)
                .collect::<Result<Vec<_>, _>>()?,
        });
    if let Some(list) = str_flag_value(args, "--patterns")? {
        // Explicit pattern sets contain commas of their own
        // (`explicit:0,63`), so the grid list cannot be naively split; an
        // `explicit:` entry swallows the items that follow it.
        let mut sets = Vec::new();
        let mut rest = list;
        loop {
            let (item, tail) = match rest.find(',') {
                Some(at) if !rest.trim_start().starts_with("explicit:") => {
                    (&rest[..at], Some(&rest[at + 1..]))
                }
                _ => (rest, None),
            };
            sets.push(parse_patterns(item)?);
            match tail {
                Some(tail) => rest = tail,
                None => break,
            }
        }
        spec = spec.patterns(sets);
    }
    if let Some(objects) = str_flag_value(args, "--objects")? {
        spec = spec.objects(ObjectSelector::Named(
            objects.split(',').map(|s| s.trim().into()).collect(),
        ));
    }
    if has_flag(args, "--no-dfi") {
        spec = spec.without_dfi();
    }
    if let Some(tests) = flag_list(args, "--rfi-tests")? {
        let seed = flag_value(args, "--rfi-seed")?.unwrap_or(0xF1_F1);
        spec = spec.rfi_leg(tests.into_iter().map(|v| v as usize).collect(), seed);
    }
    Ok(spec)
}

/// The `--store DIR` / `--resume` pair, with the resume-requires-store rule
/// enforced (shared by `sweep` and `validate`).
fn store_flags(args: &[String]) -> Result<(Option<&str>, bool), MoardError> {
    let resume = has_flag(args, "--resume");
    match str_flag_value(args, "--store")? {
        Some(dir) => Ok((Some(dir), resume)),
        None if resume => Err(MoardError::InvalidConfig(
            "`--resume` requires `--store DIR` (there is nothing to resume from)".into(),
        )),
        None => Ok((None, false)),
    }
}

fn cmd_sweep(cli: &Cli) -> Result<(), CliError> {
    let spec = sweep_spec(&cli.args)?;
    let mut runner = StudyRunner::new(spec);
    if let Some(parallelism) = parallelism_flags(&cli.args)? {
        runner = runner.parallelism(parallelism);
    }
    if let (Some(dir), resume) = store_flags(&cli.args)? {
        runner = runner.store(dir)?.resume(resume);
    }
    if let Some(backend) = trace_backend_flag(&cli.args)? {
        runner = runner.trace_backend(backend);
    }
    if let Some(batch) = replay_batch_flag(&cli.args)? {
        runner = runner.replay_batch(batch);
    }
    let (report, stats) = runner.run_detailed_in(&cli.registry)?;
    match cli.format {
        Format::Json => out!("{}", report.to_json().to_pretty()),
        Format::Text => print_study(&report, &stats, &cli.registry),
    }
    Ok(())
}

fn print_study(report: &StudyReport, stats: &SweepStats, registry: &dyn WorkloadRegistry) {
    out!(
        "study fingerprint : {}",
        moard_core::fingerprint_hex(report.study_fingerprint)
    );
    out!(
        "tasks             : {} ({} executed, {} cache hits, {} harnesses prepared)",
        stats.tasks,
        stats.executed,
        stats.cache_hits,
        stats.harnesses_prepared
    );
    for workload in report.workloads() {
        out!();
        match registry.descriptor(workload) {
            Some(d) => out!("{workload} — {} [{}]", d.description, d.code_segment),
            None => out!("{workload}"),
        }
        out!(
            "  {:<14} {:>5} {:>7} {:>9} {:>16} {:>8} {:>10} {:>12} {:>10} {:>8} {:>8}",
            "object",
            "k",
            "stride",
            "max-dfi",
            "patterns",
            "aDVF",
            "op-level",
            "propagation",
            "algorithm",
            "sites",
            "dfi"
        );
        for entry in report.entries.iter().filter(|e| e.workload == workload) {
            let (op, prop, alg) = entry.advf.accumulator.level_breakdown();
            out!(
                "  {:<14} {:>5} {:>7} {:>9} {:>16} {:>8.4} {:>10.4} {:>12.4} {:>10.4} {:>8} {:>8}",
                entry.object,
                entry.config.propagation_window,
                entry.config.site_stride,
                entry
                    .config
                    .max_dfi_per_object
                    .map_or("unbounded".to_string(), |n| n.to_string()),
                entry.config.patterns.canonical(),
                entry.advf.advf(),
                op,
                prop,
                alg,
                entry.advf.sites_analyzed,
                entry.advf.dfi_runs
            );
        }
    }
    if !report.rfi.is_empty() {
        out!();
        out!("RFI validation leg:");
        out!(
            "  {:<8} {:<14} {:>16} {:>8} {:>14} {:>12}",
            "workload",
            "object",
            "patterns",
            "tests",
            "success rate",
            "margin(95%)"
        );
        for entry in &report.rfi {
            out!(
                "  {:<8} {:<14} {:>16} {:>8} {:>14.4} {:>12.4}",
                entry.workload,
                entry.object,
                entry.patterns,
                entry.summary.tests,
                entry.summary.success_rate(),
                entry.summary.margin_95()
            );
        }
    }
}

/// Build the [`ValidationSpec`] described by the validate command line
/// (`args[0]` is the subcommand or client op).
fn validate_spec(args: &[String]) -> Result<ValidationSpec, MoardError> {
    let mut spec = ValidationSpec::default()
        .workloads(workload_selector(args)?)
        .stride(flag_value(args, "--stride")?.unwrap_or(4) as usize);
    spec.config.max_dfi_per_object = match str_flag_value(args, "--max-dfi")? {
        None => Some(5_000),
        Some(value) => parse_max_dfi(value)?,
    };
    if let Some(k) = flag_value(args, "--k")? {
        spec = spec.window(k as usize);
    }
    if let Some(patterns) = patterns_flag(args)? {
        spec = spec.patterns(patterns);
    }
    if has_flag(args, "--no-dfi") {
        spec = spec.without_dfi();
    }
    if let Some(objects) = str_flag_value(args, "--objects")? {
        spec = spec.objects(ObjectSelector::Named(
            objects.split(',').map(|s| s.trim().into()).collect(),
        ));
    }
    if let Some(percent) = flag_value(args, "--confidence")? {
        spec = spec.confidence(percent as f64 / 100.0);
    }
    if let Some(margin) = float_flag_value(args, "--margin")? {
        spec = spec.target_margin(margin);
    }
    if let Some(cap) = flag_value(args, "--max-trials")? {
        spec = spec.max_trials(cap);
    }
    if let Some(seed) = flag_value(args, "--seed")? {
        spec = spec.seed(seed);
    }
    if let Some(tolerance) = float_flag_value(args, "--tolerance")? {
        spec = spec.tolerance(tolerance);
    }
    Ok(spec)
}

fn cmd_validate(cli: &Cli) -> Result<(), CliError> {
    let spec = validate_spec(&cli.args)?;
    let mut runner = ValidationRunner::new(spec);
    if let Some(parallelism) = parallelism_flags(&cli.args)? {
        runner = runner.parallelism(parallelism);
    }
    if let (Some(dir), resume) = store_flags(&cli.args)? {
        runner = runner.store(dir)?.resume(resume);
    }
    let backend = trace_backend_flag(&cli.args)?;
    if let Some(backend) = &backend {
        runner = runner.trace_backend(backend.clone());
    }
    if let Some(batch) = replay_batch_flag(&cli.args)? {
        runner = runner.replay_batch(batch);
    }
    let (report, stats) = runner.run_detailed_in(&cli.registry)?;
    match cli.format {
        Format::Json => out!("{}", report.to_json().to_pretty()),
        Format::Text => print_validation(&report, &stats, &cli.registry),
    }
    if let Some(dir) = str_flag_value(&cli.args, "--emit-scenarios")? {
        let cache = match backend {
            Some(backend) => moard_inject::HarnessCache::with_backend(backend),
            None => moard_inject::HarnessCache::new(),
        };
        let cancel = moard_inject::CancelToken::new();
        let outcome = moard_inject::emit_validation_scenarios(
            &report,
            &cli.registry,
            &cache,
            std::path::Path::new(dir),
            &cancel,
        )?;
        // Emission is a side product: keep stdout's report schema stable by
        // narrating to stderr in JSON mode, stdout in text mode.
        let say = |line: String| match cli.format {
            Format::Json => eprintln!("{line}"),
            Format::Text => out!("{line}"),
        };
        for e in &outcome.emitted {
            say(format!(
                "minimized {}/{} -> {}",
                e.workload,
                e.object,
                e.path.display()
            ));
        }
        for (workload, object, reason) in &outcome.skipped {
            say(format!("could not minimize {workload}/{object}: {reason}"));
        }
        if outcome.emitted.is_empty() && outcome.skipped.is_empty() {
            say("no model-optimistic cells to minimize".to_string());
        }
    }
    Ok(())
}

fn print_validation(
    report: &ValidationReport,
    stats: &ValidationStats,
    registry: &dyn WorkloadRegistry,
) {
    out!(
        "spec fingerprint  : {}",
        moard_core::fingerprint_hex(report.spec_fingerprint)
    );
    out!(
        "cells             : {} ({} advf + {} rfi executed, {} cache hits, {} harnesses prepared, {} trials)",
        stats.cells,
        stats.advf_executed,
        stats.rfi_executed,
        stats.cache_hits,
        stats.harnesses_prepared,
        stats.trials_executed
    );
    out!(
        "campaign          : {:.0}% confidence, target margin {}, cap {} trials/cell, seed {}, tolerance {}, patterns {}",
        report.confidence * 100.0,
        report.target_margin,
        report.max_trials,
        report.seed,
        report.tolerance,
        report.config.patterns.canonical()
    );
    for workload in report.workloads() {
        out!();
        match registry.descriptor(workload) {
            Some(d) => out!("{workload} — {} [{}]", d.description, d.code_segment),
            None => out!("{workload}"),
        }
        out!(
            "  {:<14} {:>8} {:>9} {:>8} {:>8} {:>7} {:>7} {:>10}  verdict",
            "object",
            "aDVF",
            "RFI rate",
            "ci-low",
            "ci-high",
            "trials",
            "shards",
            "deviation"
        );
        for cell in report.cells.iter().filter(|c| c.workload == workload) {
            let (low, high) = cell.rfi.wilson_bounds(report.confidence);
            out!(
                "  {:<14} {:>8.4} {:>9.4} {:>8.4} {:>8.4} {:>7} {:>7} {:>10.4}  {}{}",
                cell.object,
                cell.advf.advf(),
                cell.rfi.success_rate(),
                low,
                high,
                cell.rfi.trials(),
                cell.rfi.shards,
                report.deviation(cell),
                report.verdict(cell).as_str(),
                if report.model_truncated(cell) {
                    " (dfi budget truncated)"
                } else {
                    ""
                }
            );
        }
        let rank = report.rank(workload);
        if let Some(tau) = rank.correlation() {
            out!(
                "  rank correlation: {tau:+.2} ({} concordant / {} discordant of {} resolved pairs)",
                rank.concordant,
                rank.discordant,
                rank.resolved_pairs
            );
        }
    }
    out!();
    out!(
        "agreement         : {}/{} cells",
        report.agreed(),
        report.cells.len()
    );
}

fn cmd_inject(cli: &Cli) -> Result<(), CliError> {
    let pos = positionals(&cli.args);
    let (Some(workload), Some(object)) = (pos.first(), pos.get(1)) else {
        return Err(CliError::Usage);
    };
    let session = configured_session(cli, workload)?
        .object(object.as_str())
        .build()?;
    let harness = session.harness();
    let stats = if has_flag(&cli.args, "--exhaustive") {
        harness.exhaustive_with_budget(
            object,
            flag_value(&cli.args, "--budget")?.unwrap_or(5_000),
            &patterns_flag(&cli.args)?.unwrap_or_default(),
        )?
    } else {
        harness.rfi(
            object,
            &RfiConfig {
                tests: flag_value(&cli.args, "--tests")?.unwrap_or(1_000) as usize,
                seed: flag_value(&cli.args, "--seed")?.unwrap_or(0xF1F1),
                parallelism: Parallelism::Auto,
                patterns: patterns_flag(&cli.args)?.unwrap_or_default(),
            },
        )?
    };
    match cli.format {
        Format::Json => {
            let mut doc = stats.to_json();
            if let Json::Obj(members) = &mut doc {
                members.insert(
                    1,
                    ("workload".into(), Json::from(harness.workload().name())),
                );
                members.insert(2, ("object".into(), Json::from(object.as_str())));
            }
            out!("{}", doc.to_pretty());
        }
        Format::Text => {
            out!("workload      : {}", harness.workload().name());
            out!("data object   : {object}");
            out!("injections    : {}", stats.runs);
            out!("identical     : {}", stats.identical);
            out!("acceptable    : {}", stats.acceptable);
            out!("incorrect     : {}", stats.incorrect);
            out!("crashed       : {}", stats.crashed);
            out!("success rate  : {:.4}", stats.success_rate());
            out!("margin (95%)  : {:.4}", stats.margin_of_error(0.95));
        }
    }
    Ok(())
}

/// One `--site REC:SLOT` value: a record id, a colon, and the canonical
/// slot rendering (`operand:N` or `store-dest`).
fn parse_site(text: &str) -> Result<moard_core::ScenarioSite, MoardError> {
    let bad = || {
        MoardError::InvalidConfig(format!(
            "flag `--site` expects `RECORD:operand:N` or `RECORD:store-dest`, got `{text}`"
        ))
    };
    let (record, slot) = text.split_once(':').ok_or_else(bad)?;
    let record_id = record.trim().parse::<u64>().map_err(|_| bad())?;
    let slot = moard_core::scenario::slot_from_str(slot.trim()).map_err(|_| bad())?;
    Ok(moard_core::ScenarioSite { record_id, slot })
}

/// One `--mask b+b...` value: `+`-joined bit positions, strictly increasing
/// (the single-pattern form of the `explicit:` grammar).
fn parse_mask(text: &str) -> Result<moard_core::ErrorPattern, MoardError> {
    let bad = || {
        MoardError::InvalidConfig(format!(
            "flag `--mask` expects one `+`-joined list of strictly increasing bit positions \
             below 64, e.g. `3+4`, got `{text}`"
        ))
    };
    match moard_core::ErrorPatternSet::from_canonical(&format!("explicit:{}", text.trim())) {
        Some(moard_core::ErrorPatternSet::Explicit(mut patterns)) if patterns.len() == 1 => {
            Ok(patterns.remove(0))
        }
        _ => Err(bad()),
    }
}

/// Build the [`MinimizeSpec`] described by the minimize command line
/// (`args[0]` is the subcommand or client op).
fn minimize_spec(args: &[String]) -> Result<MinimizeSpec, CliError> {
    let pos = positionals(args);
    let (Some(workload), Some(object)) = (pos.first(), pos.get(1)) else {
        return Err(CliError::Usage);
    };
    let mut spec = MinimizeSpec::cell(workload.as_str(), object.as_str()).stride(4);
    // `--report FILE` adopts the discovering campaign's population
    // parameters, so the minimizer searches exactly the population the
    // verdict came from; explicit flags below still override per-axis.
    if let Some(path) = str_flag_value(args, "--report")? {
        let text =
            std::fs::read_to_string(path).map_err(|e| MoardError::io(path.to_string(), e))?;
        let report = ValidationReport::from_json_str(&text)?;
        if !report
            .cells
            .iter()
            .any(|c| c.workload.eq_ignore_ascii_case(workload) && c.object == **object)
        {
            return Err(MoardError::InvalidConfig(format!(
                "report `{path}` has no cell `{workload}/{object}` (cells: {})",
                report
                    .cells
                    .iter()
                    .map(|c| format!("{}/{}", c.workload, c.object))
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
            .into());
        }
        spec = spec
            .stride(report.config.site_stride)
            .patterns(report.config.patterns.clone())
            .window(report.config.propagation_window)
            .seed(report.seed);
    }
    if let Some(stride) = flag_value(args, "--stride")? {
        spec = spec.stride(stride as usize);
    }
    if let Some(patterns) = patterns_flag(args)? {
        spec = spec.patterns(patterns);
    }
    if let Some(k) = flag_value(args, "--window")? {
        spec = spec.window(k as usize);
    }
    if let Some(text) = str_flag_value(args, "--site")? {
        let site = parse_site(text)?;
        spec = spec.site(site.record_id, site.slot);
    }
    if let Some(text) = str_flag_value(args, "--mask")? {
        spec = spec.pattern(parse_mask(text)?);
    }
    if let Some(text) = str_flag_value(args, "--expect")? {
        let expected = moard_core::scenario::outcome_from_str(text).map_err(|_| {
            MoardError::InvalidConfig(format!(
                "flag `--expect` expects `identical`, `acceptable`, `incorrect`, or \
                 `crashed`, got `{text}`"
            ))
        })?;
        spec = spec.expected(expected);
    }
    if let Some(seed) = flag_value(args, "--seed")? {
        spec = spec.seed(seed);
    }
    if let Some(name) = str_flag_value(args, "--name")? {
        spec = spec.name(name);
    }
    Ok(spec)
}

fn cmd_minimize(cli: &Cli) -> Result<(), CliError> {
    let spec = minimize_spec(&cli.args)?;
    let cache = moard_inject::HarnessCache::new();
    let cancel = moard_inject::CancelToken::new();
    let report = moard_inject::run_minimize_in(&cli.registry, &cache, &spec, &cancel)?;
    let written = match str_flag_value(&cli.args, "--emit-scenario")? {
        Some(dir) => Some(moard_inject::write_scenario(
            std::path::Path::new(dir),
            &report.scenario,
        )?),
        None => None,
    };
    match cli.format {
        Format::Json => {
            // Keep stdout pure report JSON; the written path goes to stderr.
            if let Some(path) = &written {
                eprintln!("scenario written: {}", path.display());
            }
            out!("{}", report.to_json().to_pretty());
        }
        Format::Text => {
            print_minimize(&report);
            if let Some(path) = &written {
                out!("scenario written  : {}", path.display());
            }
        }
    }
    Ok(())
}

fn print_minimize(report: &MinimizeReport) {
    let s = &report.scenario;
    out!("workload          : {}", s.workload);
    out!("data object       : {}", s.object);
    out!("scenario          : {}", s.name);
    out!(
        "sites             : {} -> {} (record {} {})",
        report.initial_sites,
        s.sites.len(),
        s.sites[0].record_id,
        moard_core::scenario::slot_to_string(s.sites[0].slot)
    );
    out!(
        "mask bits         : {} -> {} ({:?})",
        report.initial_bits,
        s.pattern.bits.len(),
        s.pattern.bits
    );
    out!(
        "window            : {} -> {}",
        report.initial_window,
        s.window
    );
    out!(
        "expected outcome  : {}",
        moard_core::scenario::outcome_to_str(s.expected_outcome)
    );
    out!("model class       : {}", s.expected_model_class);
    out!(
        "fragment          : {}",
        moard_core::fingerprint_hex(s.fragment_fingerprint)
    );
    out!(
        "oracle probes     : {} ({} injections, {} memo hits)",
        report.probes,
        report.injections,
        report.cache_hits()
    );
}

fn cmd_rank(cli: &Cli) -> Result<(), CliError> {
    let mut report = session_for_positionals(cli)?;
    report.reports.sort_by(|a, b| {
        a.advf()
            .partial_cmp(&b.advf())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    match cli.format {
        Format::Json => {
            let doc = Json::object([
                ("schema_version", Json::from(moard_core::SCHEMA_VERSION)),
                ("workload", Json::from(report.workload.as_str())),
                ("order", Json::from("most vulnerable first")),
                (
                    "ranking",
                    Json::array(report.reports.iter().map(|r| {
                        Json::object([
                            ("object", Json::from(r.object.as_str())),
                            ("advf", Json::from(r.advf())),
                        ])
                    })),
                ),
            ]);
            out!("{}", doc.to_pretty());
        }
        Format::Text => {
            out!(
                "data objects of {} from most to least vulnerable:",
                report.workload
            );
            for r in &report.reports {
                out!("  {:<14} aDVF = {:.4}", r.object, r.advf());
            }
        }
    }
    Ok(())
}

fn cmd_serve(cli: &Cli) -> Result<(), CliError> {
    let addr_flag = str_flag_value(&cli.args, "--addr")?;
    let addr = match flag_value(&cli.args, "--port")? {
        // `--addr` carries a port of its own; accepting both would silently
        // drop one of them.
        Some(_) if addr_flag.is_some() => {
            return Err(CliError::Moard(MoardError::InvalidConfig(
                "`--addr` and `--port` contradict each other; use one".into(),
            )))
        }
        Some(port) => {
            let port = u16::try_from(port).map_err(|_| {
                MoardError::InvalidConfig(format!(
                    "flag `--port` expects a port number, got `{port}`"
                ))
            })?;
            format!("127.0.0.1:{port}")
        }
        None => addr_flag.unwrap_or("127.0.0.1:7411").to_string(),
    };
    let daemon = moard_server::Daemon::start(moard_server::DaemonConfig {
        addr,
        threads: threads_flag(&cli.args)?.unwrap_or(0),
        store: str_flag_value(&cli.args, "--store")?.map(Into::into),
        trace_backend: trace_backend_flag(&cli.args)?.unwrap_or_default(),
        replay_batch: replay_batch_flag(&cli.args)?.unwrap_or_default(),
    })?;
    // Scraped by scripts and CI (port 0 resolves to the ephemeral port
    // here): keep the exact shape, and flush before the blocking join.
    out!("moard serve listening on {}", daemon.addr());
    let _ = std::io::Write::flush(&mut std::io::stdout());
    daemon.join();
    out!("moard serve stopped");
    Ok(())
}

/// Job priority from `--priority low|normal|high` (default normal).
fn priority_flag(args: &[String]) -> Result<moard_server::Priority, MoardError> {
    match str_flag_value(args, "--priority")? {
        None => Ok(moard_server::Priority::Normal),
        Some(text) => moard_server::Priority::parse(text).ok_or_else(|| {
            MoardError::InvalidConfig(format!(
                "flag `--priority` expects `low`, `normal`, or `high`, got `{text}`"
            ))
        }),
    }
}

fn cmd_client(cli: &Cli) -> Result<(), CliError> {
    use moard_server::{Client, Request, Response};
    // Everything after `client` is the daemon operation's own command
    // line: `sub[0]` is the op, so `positionals`/spec builders read it
    // exactly like a local subcommand.
    let sub = &cli.args[1..];
    let Some(op) = sub.first().map(String::as_str) else {
        return Err(CliError::Usage);
    };
    let addr = str_flag_value(&cli.args, "--addr")?.ok_or_else(|| {
        MoardError::InvalidConfig(
            "`moard client` needs `--addr HOST:PORT` of a running daemon (start one with \
             `moard serve`)"
                .into(),
        )
    })?;
    let mut client = Client::connect(addr)?;
    let request = match op {
        "ping" => {
            client.ping()?;
            out!("pong");
            return Ok(());
        }
        "shutdown" => {
            client.shutdown()?;
            out!("shutdown acknowledged");
            return Ok(());
        }
        "metrics" => {
            let doc = client.metrics()?;
            match cli.format {
                Format::Json => out!("{}", doc.to_pretty()),
                Format::Text => out!(
                    "{}",
                    moard_server::metrics::exposition_from_json(&doc)
                        .map_err(MoardError::from)?
                        .trim_end()
                ),
            }
            return Ok(());
        }
        "cancel" => {
            let pos = positionals(sub);
            let job = pos
                .first()
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| {
                    MoardError::InvalidConfig(
                        "`moard client cancel` needs the numeric job id printed at submission"
                            .into(),
                    )
                })?;
            return match client.cancel(job)? {
                Response::Ok => {
                    out!("cancelled job {job}");
                    Ok(())
                }
                Response::Error { message } => Err(MoardError::InvalidConfig(message).into()),
                other => Err(MoardError::InvalidConfig(format!(
                    "daemon answered `cancel` with an unexpected `{}` frame",
                    other.kind()
                ))
                .into()),
            };
        }
        "analyze" => {
            let pos = positionals(sub);
            let Some(workload) = pos.first() else {
                return Err(CliError::Usage);
            };
            let mut config = moard_core::AnalysisConfig {
                site_stride: flag_value(sub, "--stride")?.unwrap_or(4) as usize,
                max_dfi_per_object: match str_flag_value(sub, "--max-dfi")? {
                    None => Some(5_000),
                    Some(value) => parse_max_dfi(value)?,
                },
                ..moard_core::AnalysisConfig::default()
            };
            if let Some(k) = flag_value(sub, "--k")? {
                config.propagation_window = k as usize;
            }
            if let Some(patterns) = patterns_flag(sub)? {
                config.patterns = patterns;
            }
            Request::Analyze {
                workload: workload.to_string(),
                objects: pos[1..].iter().map(|s| s.to_string()).collect(),
                config,
                use_dfi: !has_flag(sub, "--no-dfi"),
                priority: priority_flag(sub)?,
            }
        }
        "sweep" => Request::Sweep {
            spec: sweep_spec(sub)?,
            priority: priority_flag(sub)?,
        },
        "validate" => Request::Validate {
            spec: validate_spec(sub)?,
            priority: priority_flag(sub)?,
        },
        "minimize" => Request::Minimize {
            spec: minimize_spec(sub)?,
            priority: priority_flag(sub)?,
        },
        _ => return Err(CliError::Usage),
    };
    let (job, response) = client.submit(&request)?;
    match response {
        Response::Result {
            op,
            cache_hits,
            executed,
            payload,
            ..
        } => match cli.format {
            Format::Json => out!(
                "{}",
                Json::object([
                    ("job", Json::from(job)),
                    ("op", Json::from(op.as_str())),
                    ("cache_hits", Json::from(cache_hits)),
                    ("executed", Json::from(executed)),
                    ("payload", payload),
                ])
                .to_pretty()
            ),
            Format::Text => {
                out!("job {job} ({op}): {executed} executed, {cache_hits} cache hits");
                out!("{}", payload.to_pretty());
            }
        },
        Response::Cancelled { .. } => out!("job {job} cancelled"),
        Response::Error { message } => return Err(MoardError::InvalidConfig(message).into()),
        other => {
            return Err(MoardError::InvalidConfig(format!(
                "daemon answered job {job} with an unexpected `{}` frame",
                other.kind()
            ))
            .into())
        }
    }
    Ok(())
}

fn print_report(report: &moard_core::AdvfReport) {
    let (op, prop, alg) = report.accumulator.level_breakdown();
    let (ow, os, lc) = report.accumulator.kind_breakdown();
    out!("workload          : {}", report.workload);
    out!("data object       : {}", report.object);
    out!("error patterns    : {}", report.patterns);
    out!("aDVF              : {:.4}", report.advf());
    out!("  operation level : {op:.4} (overwriting {ow:.4}, overshadowing {os:.4}, logic/compare {lc:.4})");
    out!("  propagation     : {prop:.4}");
    out!("  algorithm       : {alg:.4}");
    out!("sites analyzed    : {}", report.sites_analyzed);
    out!(
        "DFI runs          : {} ({} cache hits, {} resolved analytically)",
        report.dfi_runs,
        report.dfi_cache_hits,
        report.resolved_analytically
    );
    out!(
        "config fingerprint: {}",
        moard_core::fingerprint_hex(report.config_fingerprint)
    );
    out!();
}
