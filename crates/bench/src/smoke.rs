//! The `bench-smoke` suite: fixed-configuration micro-benchmarks of the two
//! trace-engine hot paths (aDVF analysis and propagation replay) on the MM
//! and PF workloads, with a JSON report and a regression gate.
//!
//! The suite is what the `bench-smoke` CI job runs: it times each benchmark,
//! writes a schema-versioned `BENCH_*.json` document (embedding the exact
//! analysis-configuration fingerprint and the trace length of every workload
//! measured, so numbers from different configurations or workload sizes are
//! never conflated), and compares the medians against a committed
//! `BENCH_baseline.json`, failing on a configurable regression threshold
//! (default 25%).
//!
//! Baseline entries may carry a `pre_pr_median_ns` field recording the
//! pre-trace-engine numbers; when present, the report also materializes the
//! speedup of the current engine over that reference.

use crate::micro::{bench, black_box, BenchStats};
use moard_core::{
    analyze_operation, enumerate_sites, fingerprint_hex, parse_fingerprint, replay,
    trace_stats_to_json, AdvfAnalyzer, AnalysisConfig, CorruptLoc, ErrorPattern, OpVerdict,
};
use moard_inject::{
    Parallelism, StudyRunner, StudySpec, ValidationRunner, ValidationSpec, WorkloadSelector,
};
use moard_json::{Json, JsonError};
use moard_vm::{run_traced, run_traced_with, Trace, TraceBackendSpec, TraceStats, Vm};
use moard_workloads::{MatMul, MmConfig, Pf, Registry, Workload};

/// Version of the `BENCH_*.json` schema this build writes and reads.
///
/// History: 2 records `warmup_iters` per bench (the aDVF cases warm up
/// longer — `advf_analysis/pf` used to spike to ~1.8× its median on a cold
/// cache, which made the regression gate noisy); 1 is the initial shape.
/// Version-1 documents still parse as baselines.
pub const SMOKE_SCHEMA_VERSION: u32 = 2;

/// Untimed warmup iterations of the aDVF-analysis cases.  These walk the
/// whole strided site population, so the first iterations also fault the
/// trace pages and heat the allocator; two warmups left cold-start spikes
/// inside the timed window.
const ADVF_WARMUP: u32 = 4;

/// Default regression threshold: fail when a median is more than 25% slower
/// than its baseline.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// The analysis configuration every smoke benchmark runs under (analytic
/// mode: the suite measures the trace engine, not the fault injector).
pub fn smoke_config() -> AnalysisConfig {
    AnalysisConfig {
        site_stride: 4,
        ..Default::default()
    }
}

/// The multi-bit configuration of the `patterns/mm` case: the same suite
/// settings with adjacent double-bit bursts (§VII-B) instead of single-bit
/// flips, so the pattern-generalized hot path — mask-keyed classification,
/// per-pattern-class tallies, one-XOR fault application — is
/// regression-gated alongside the single-bit engine.
pub fn multibit_config() -> AnalysisConfig {
    AnalysisConfig {
        patterns: moard_core::ErrorPatternSet::AdjacentBits { width: 2 },
        ..smoke_config()
    }
}

/// One prepared workload of the suite: its trace and the target object.
pub struct SmokeWorkload {
    /// Lower-case suite name (`mm`, `pf`).
    pub key: &'static str,
    /// Workload display name (`MM`, `PF`).
    pub workload: String,
    /// The recorded dynamic trace.
    pub trace: Trace,
    /// Target object id within the trace.
    pub object: moard_vm::ObjectId,
    /// Target object name.
    pub object_name: &'static str,
}

/// Build the fixed MM and PF instances the suite measures.
pub fn smoke_workloads() -> Vec<SmokeWorkload> {
    let mut out = Vec::new();
    let mm = MatMul::with_config(MmConfig {
        n: 6,
        ..Default::default()
    });
    let module = mm.build();
    let (_, trace) = run_traced(&module).expect("MM builds and runs");
    let vm = Vm::with_defaults(&module).expect("MM loads");
    let object = vm.objects().by_name("C").expect("MM has C").id;
    out.push(SmokeWorkload {
        key: "mm",
        workload: mm.name().to_string(),
        trace,
        object,
        object_name: "C",
    });

    let pf = Pf::default();
    let module = pf.build();
    let (_, trace) = run_traced(&module).expect("PF builds and runs");
    let vm = Vm::with_defaults(&module).expect("PF loads");
    let object = vm.objects().by_name("xe").expect("PF has xe").id;
    out.push(SmokeWorkload {
        key: "pf",
        workload: pf.name().to_string(),
        trace,
        object,
        object_name: "xe",
    });
    out
}

fn mm_small() -> Box<dyn Workload> {
    Box::new(MatMul::with_config(MmConfig {
        n: 6,
        ..Default::default()
    }))
}

fn pf_default() -> Box<dyn Workload> {
    Box::new(Pf::default())
}

/// Registry holding exactly the suite's fixed MM/PF instances — the sweep
/// smoke case runs the study driver against it, so the scheduler is
/// measured over the same workloads the per-path benches time.
pub fn smoke_registry() -> Registry {
    let mut r = Registry::empty();
    r.register(&[], mm_small);
    r.register(&[], pf_default);
    r
}

/// The study the sweep smoke case executes: both suite workloads, their
/// target objects, the suite's analysis configuration, analytic mode (the
/// bench measures the sweep scheduler and trace engine, not the injector).
pub fn sweep_spec() -> StudySpec {
    let config = smoke_config();
    StudySpec::default()
        .workloads(WorkloadSelector::All)
        .windows(vec![config.propagation_window])
        .strides(vec![config.site_stride])
        .without_dfi()
}

/// The jobs the `serve/mm+pf` smoke case submits: one analytic analyze
/// cell per suite workload, coarse-strided so the cold (store-filling)
/// round stays CI-sized against the daemon's full-size registry.  The
/// timed rounds are pure warm round-trips — connect, frame, schedule,
/// store lookup, respond — which is exactly the surface `moard serve`
/// adds over the local engines.
pub fn serve_jobs() -> Vec<moard_server::Request> {
    ["mm", "pf"]
        .into_iter()
        .map(|workload| moard_server::Request::Analyze {
            workload: workload.into(),
            objects: vec![],
            config: AnalysisConfig {
                site_stride: 32,
                ..smoke_config()
            },
            use_dfi: false,
            priority: moard_server::Priority::Normal,
        })
        .collect()
}

/// The campaign the validate smoke case executes: both suite workloads,
/// their target objects, an adaptive shard-deterministic RFI leg with a
/// CI-sized budget, and an analytic aDVF leg (the bench times the
/// validation engine's scheduling, sampling, and injection loop — the DFI
/// resolver has its own cases).
pub fn validate_smoke_spec() -> ValidationSpec {
    ValidationSpec::default()
        .workloads(WorkloadSelector::All)
        .stride(8)
        .without_dfi()
        .target_margin(0.15)
        .max_trials(64)
        .shards(16, 2)
}

/// The minimization the `minimize/mm` smoke case executes: an unpinned
/// cell of the suite's MM instance, so the finder scan, both ddmin axes,
/// and the window bisection are all on the clock.
pub fn minimize_smoke_spec() -> moard_inject::MinimizeSpec {
    moard_inject::MinimizeSpec::cell("mm", "C").stride(smoke_config().site_stride)
}

/// Collect up to `cap` propagation seeds for the object: participation sites
/// whose operation-level verdict leaves corrupted locations to replay.
pub fn propagation_seeds(
    trace: &Trace,
    object: moard_vm::ObjectId,
    cap: usize,
) -> Vec<(usize, Vec<CorruptLoc>)> {
    let mut seeds = Vec::new();
    for site in enumerate_sites(trace, object) {
        let rec = trace.record(site.record_id).expect("site in trace");
        let bit = 62 % site.bit_width();
        match analyze_operation(rec, site.slot, &ErrorPattern::single(bit)) {
            OpVerdict::Propagate { corrupt } | OpVerdict::OvershadowCandidate { corrupt } => {
                seeds.push((site.record_id as usize + 1, corrupt));
            }
            _ => {}
        }
        if seeds.len() >= cap {
            break;
        }
    }
    seeds
}

/// The result of one suite run.
#[derive(Debug, Clone)]
pub struct SmokeReport {
    /// Per-benchmark timing statistics, in suite order.
    pub benches: Vec<BenchStats>,
    /// Trace statistics (record count, index sizes) per measured workload,
    /// in suite order.
    pub traces: Vec<(String, TraceStats)>,
    /// Fingerprint of the [`smoke_config`] the timings were taken under.
    pub config_fingerprint: u64,
}

/// Run the full suite: `advf_analysis/{mm,pf}` (analytic aDVF of the target
/// object), `propagation_k/{mm,pf}/k=50` (replay of every collected
/// propagation seed with the paper's default window),
/// `patterns/mm/adjacent-bits:2` (the multi-bit analysis hot path — same
/// MM instance, adjacent double-bit bursts), `paged/pf` (the same analytic
/// PF analysis streamed through the paged on-disk trace backend with
/// deliberately small segments, gating segment decode, checksum
/// verification, and seam handling), `sweep/mm+pf`
/// (the study driver end to end: spec expansion, harness preparation, and
/// per-task scheduling over both workloads, single-threaded so the timing
/// gates the scheduler's overhead rather than the machine's core count),
/// `validate/mm+pf` (the validation engine end to end: analytic aDVF
/// legs plus adaptive shard-deterministic RFI campaigns, single-threaded
/// for the same reason), and `minimize/mm` (the fault-scenario minimizer
/// end to end: finder scan, site/bit ddmin fixpoint, and window bisection
/// against the live injection oracle).
pub fn run_suite() -> SmokeReport {
    let config = smoke_config();
    let k = config.propagation_window;
    let mut benches = Vec::new();
    let mut traces = Vec::new();
    let workloads = smoke_workloads();
    for wl in &workloads {
        traces.push((wl.workload.clone(), wl.trace.stats()));
        benches.push(bench(
            &format!("advf_analysis/{}", wl.key),
            ADVF_WARMUP,
            10,
            || {
                let analyzer = AdvfAnalyzer::new(&wl.trace, config.clone());
                black_box(analyzer.analyze(wl.object, wl.object_name, &wl.workload, None));
            },
        ));
        let seeds = propagation_seeds(&wl.trace, wl.object, 256);
        assert!(
            !seeds.is_empty(),
            "{} must expose at least one propagation seed",
            wl.workload
        );
        benches.push(bench(
            &format!("propagation_k/{}/k={k}", wl.key),
            2,
            20,
            || {
                for (start, corrupt) in &seeds {
                    black_box(replay(&wl.trace, *start, corrupt, k));
                }
            },
        ));
    }
    // The multi-bit hot path: analytic aDVF of MM's C under adjacent
    // double-bit bursts (pattern enumeration, mask-keyed classification,
    // and per-pattern-class tallies all on the clock), reusing the already
    // prepared MM instance.
    let multibit = multibit_config();
    let mm = &workloads[0];
    assert_eq!(mm.key, "mm", "the suite's first workload is MM");
    benches.push(bench(
        "patterns/mm/adjacent-bits:2",
        ADVF_WARMUP,
        10,
        || {
            let analyzer = AdvfAnalyzer::new(&mm.trace, multibit.clone());
            black_box(analyzer.analyze(mm.object, mm.object_name, &mm.workload, None));
        },
    ));
    // The lane-batched replay engine, pinned to the full 64-lane width so
    // these cases keep gating the batched hot path even if the analyzer's
    // default ever changes: the same analytic PF analysis and multi-bit MM
    // analysis as above, with up to 64 (site, pattern) replays sharing each
    // trace walk.  Their baseline entries carry `pre_pr_median_ns` from the
    // sequential engine's committed medians, so the report materializes the
    // batching speedup directly.
    let batched = moard_core::ReplayBatch::width(64);
    let pf = &workloads[1];
    assert_eq!(pf.key, "pf", "the suite's second workload is PF");
    benches.push(bench("advf_batch/pf", ADVF_WARMUP, 10, || {
        let analyzer = AdvfAnalyzer::new(&pf.trace, config.clone()).with_replay_batch(batched);
        black_box(analyzer.analyze(pf.object, pf.object_name, &pf.workload, None));
    }));
    benches.push(bench(
        "advf_batch/mm/adjacent-bits:2",
        ADVF_WARMUP,
        10,
        || {
            let analyzer =
                AdvfAnalyzer::new(&mm.trace, multibit.clone()).with_replay_batch(batched);
            black_box(analyzer.analyze(mm.object, mm.object_name, &mm.workload, None));
        },
    ));
    // The out-of-core hot path: the same analytic PF analysis as
    // `advf_analysis/pf`, but streamed through the paged trace backend —
    // segment decode, checksum verification, and the per-reader LRU are
    // all on the clock.  The spill is written off the clock; segments far
    // below the default size force every replay window across seams, so
    // the timing gates the backend's seam handling, not just its decoder.
    let pf = &workloads[1];
    assert_eq!(pf.key, "pf", "the suite's second workload is PF");
    let pf_module = pf_default().build();
    let (_, paged_pf) = run_traced_with(
        &pf_module,
        &TraceBackendSpec::Paged {
            dir: None,
            segment_records: 1024,
        },
    )
    .expect("PF builds and runs on the paged backend");
    assert_eq!(paged_pf.len() as u64, pf.trace.stats().records);
    benches.push(bench("paged/pf", 2, 10, || {
        let analyzer = AdvfAnalyzer::new(paged_pf.storage(), config.clone());
        black_box(analyzer.analyze(pf.object, pf.object_name, &pf.workload, None));
    }));
    assert!(
        moard_vm::TraceStorage::poisoned(&paged_pf).is_none(),
        "the paged PF spill must stay healthy across the timed rounds"
    );
    let registry = smoke_registry();
    let spec = sweep_spec();
    benches.push(bench("sweep/mm+pf", 1, 5, || {
        let report = StudyRunner::new(spec.clone())
            .parallelism(Parallelism::Sequential)
            .run_in(&registry)
            .expect("the smoke sweep covers only known workloads");
        black_box(report);
    }));
    let spec = validate_smoke_spec();
    benches.push(bench("validate/mm+pf", 1, 5, || {
        let report = ValidationRunner::new(spec.clone())
            .parallelism(Parallelism::Sequential)
            .run_in(&registry)
            .expect("the smoke campaign covers only known workloads");
        black_box(report);
    }));
    // The scenario minimizer end to end: finder scan, site/bit ddmin
    // fixpoint, and window bisection over the suite's MM instance.  The
    // harness is prepared off the clock; the memo cache is per-call, so
    // every iteration re-probes the oracle.
    let cache = moard_inject::HarnessCache::new();
    let harness = cache
        .get_or_prepare(&registry, "mm")
        .expect("the smoke registry serves MM");
    let spec = minimize_smoke_spec();
    benches.push(bench("minimize/mm", 1, 5, || {
        let report = moard_inject::minimize(&harness, &spec, &moard_inject::CancelToken::new())
            .expect("the suite's MM instance has a minimizable failure");
        black_box(report);
    }));
    // The daemon round-trip: an in-process `moard serve` on an ephemeral
    // port, its store pre-filled by one unclocked cold round, answering
    // both suite jobs per iteration over a fresh TCP connection.
    let store = std::env::temp_dir().join(format!("moard-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let daemon = moard_server::Daemon::start(moard_server::DaemonConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        store: Some(store.clone()),
        ..Default::default()
    })
    .expect("the smoke daemon binds an ephemeral port");
    let addr = daemon.addr();
    let jobs = serve_jobs();
    benches.push(bench("serve/mm+pf", 1, 10, || {
        let mut client = moard_server::Client::connect(addr).expect("the smoke daemon is serving");
        for job in &jobs {
            let (_, response) = client.submit(job).expect("the smoke jobs are well-formed");
            assert!(
                matches!(response, moard_server::Response::Result { .. }),
                "smoke job answered with `{}`",
                response.kind()
            );
            black_box(response);
        }
    }));
    daemon.shutdown();
    daemon.join();
    let _ = std::fs::remove_dir_all(&store);
    SmokeReport {
        benches,
        traces,
        config_fingerprint: config.fingerprint(),
    }
}

impl SmokeReport {
    /// The schema-versioned JSON document of this run.  `speedup_vs_pre_pr`
    /// is materialized per bench when `reference` (a parsed baseline with
    /// `pre_pr_median_ns` entries) provides a matching name.
    pub fn to_json(&self, reference: Option<&Baseline>) -> Json {
        Json::object([
            ("schema_version", Json::from(SMOKE_SCHEMA_VERSION)),
            ("kind", Json::from("moard-bench-smoke")),
            (
                "config_fingerprint",
                Json::from(fingerprint_hex(self.config_fingerprint)),
            ),
            (
                "traces",
                Json::object(
                    self.traces
                        .iter()
                        .map(|(name, stats)| (name.as_str(), trace_stats_to_json(stats))),
                ),
            ),
            (
                "benches",
                Json::array(self.benches.iter().map(|b| {
                    let mut fields = vec![
                        ("name", Json::from(b.name.as_str())),
                        ("median_ns", Json::from(b.median_ns as u64)),
                        ("min_ns", Json::from(b.min_ns as u64)),
                        ("max_ns", Json::from(b.max_ns as u64)),
                        ("iters", Json::from(b.iters)),
                        ("warmup_iters", Json::from(b.warmup_iters)),
                    ];
                    if let Some(pre) = reference.and_then(|r| r.pre_pr_median_ns(&b.name)) {
                        fields.push(("pre_pr_median_ns", Json::from(pre)));
                        fields.push((
                            "speedup_vs_pre_pr",
                            Json::from(pre as f64 / b.median_ns.max(1) as f64),
                        ));
                    }
                    Json::object(fields)
                })),
            ),
        ])
    }
}

/// One committed baseline entry.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineBench {
    /// Benchmark name (matches [`BenchStats::name`]).
    pub name: String,
    /// Committed reference median, in nanoseconds.
    pub median_ns: u64,
    /// Median of the pre-trace-engine implementation, when recorded.
    pub pre_pr_median_ns: Option<u64>,
}

/// A parsed `BENCH_baseline.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Fingerprint of the analysis configuration the baseline was taken
    /// under; comparing against a different configuration is rejected.
    pub config_fingerprint: u64,
    /// Baseline entries.
    pub benches: Vec<BaselineBench>,
}

impl Baseline {
    /// Parse a baseline document.
    pub fn from_json_str(text: &str) -> Result<Baseline, JsonError> {
        let doc = Json::parse(text)?;
        let version = doc.u32_field("schema_version")?;
        // Every version only ever added fields the baseline reader does not
        // need (`warmup_iters` in 2), so older documents remain valid
        // baselines — refusing them would force a blind refresh that loses
        // the `pre_pr_median_ns` references they carry.
        if !(1..=SMOKE_SCHEMA_VERSION).contains(&version) {
            return Err(JsonError::WrongType {
                field: "schema_version".into(),
                expected: "a supported bench-smoke schema version",
            });
        }
        let config_fingerprint = parse_fingerprint(doc.str_field("config_fingerprint")?)?;
        let benches = doc
            .arr_field("benches")?
            .iter()
            .map(|b| {
                Ok(BaselineBench {
                    name: b.str_field("name")?.to_string(),
                    median_ns: b.u64_field("median_ns")?,
                    pre_pr_median_ns: match b.field("pre_pr_median_ns") {
                        Ok(v) => v.as_u64(),
                        Err(_) => None,
                    },
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        Ok(Baseline {
            config_fingerprint,
            benches,
        })
    }

    /// The committed median for a benchmark name.
    pub fn median_ns(&self, name: &str) -> Option<u64> {
        self.benches
            .iter()
            .find(|b| b.name == name)
            .map(|b| b.median_ns)
    }

    /// The recorded pre-PR median for a benchmark name.
    pub fn pre_pr_median_ns(&self, name: &str) -> Option<u64> {
        self.benches
            .iter()
            .find(|b| b.name == name)
            .and_then(|b| b.pre_pr_median_ns)
    }
}

/// One line of the regression gate's verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct GateLine {
    /// Benchmark name.
    pub name: String,
    /// Median of the current run, in nanoseconds.
    pub current_ns: u64,
    /// Committed baseline median, in nanoseconds.
    pub baseline_ns: u64,
    /// `current / baseline`; above `1 + tolerance` is a regression.
    pub ratio: f64,
    /// True if this benchmark regressed beyond the tolerance.
    pub regressed: bool,
}

/// Compare a run against a committed baseline.  The comparison must be
/// total in both directions: a baseline entry missing from the run would
/// silently disable its gate, and a run bench missing from the baseline
/// would never be gated at all — both are errors, not passes.
pub fn gate(
    report: &SmokeReport,
    baseline: &Baseline,
    tolerance: f64,
) -> Result<Vec<GateLine>, String> {
    if baseline.config_fingerprint != report.config_fingerprint {
        return Err(format!(
            "baseline config fingerprint {} does not match the current suite ({}); \
             regenerate the baseline",
            fingerprint_hex(baseline.config_fingerprint),
            fingerprint_hex(report.config_fingerprint)
        ));
    }
    let mut lines = Vec::new();
    for entry in &baseline.benches {
        let current = report
            .benches
            .iter()
            .find(|b| b.name == entry.name)
            .ok_or_else(|| {
                format!(
                    "baseline bench `{}` missing from the current run",
                    entry.name
                )
            })?;
        let current_ns = current.median_ns as u64;
        let ratio = current_ns as f64 / entry.median_ns.max(1) as f64;
        lines.push(GateLine {
            name: entry.name.clone(),
            current_ns,
            baseline_ns: entry.median_ns,
            ratio,
            regressed: ratio > 1.0 + tolerance,
        });
    }
    for bench in &report.benches {
        if baseline.median_ns(&bench.name).is_none() {
            return Err(format!(
                "bench `{}` has no baseline entry; refresh BENCH_baseline.json \
                 (bench_smoke --write-baseline) so it is gated",
                bench.name
            ));
        }
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> SmokeReport {
        SmokeReport {
            benches: vec![
                BenchStats {
                    name: "advf_analysis/mm".into(),
                    median_ns: 500,
                    min_ns: 400,
                    max_ns: 600,
                    iters: 10,
                    warmup_iters: 4,
                },
                BenchStats {
                    name: "propagation_k/mm/k=50".into(),
                    median_ns: 90,
                    min_ns: 80,
                    max_ns: 100,
                    iters: 20,
                    warmup_iters: 2,
                },
            ],
            traces: vec![(
                "MM".into(),
                TraceStats {
                    records: 1234,
                    indexed_objects: 3,
                    index_entries: 400,
                },
            )],
            config_fingerprint: smoke_config().fingerprint(),
        }
    }

    fn sample_baseline(mm_ns: u64, prop_ns: u64) -> Baseline {
        Baseline {
            config_fingerprint: smoke_config().fingerprint(),
            benches: vec![
                BaselineBench {
                    name: "advf_analysis/mm".into(),
                    median_ns: mm_ns,
                    pre_pr_median_ns: Some(2 * mm_ns),
                },
                BaselineBench {
                    name: "propagation_k/mm/k=50".into(),
                    median_ns: prop_ns,
                    pre_pr_median_ns: None,
                },
            ],
        }
    }

    #[test]
    fn report_json_round_trips_as_a_baseline() {
        let report = sample_report();
        let text = report.to_json(None).to_pretty();
        let baseline = Baseline::from_json_str(&text).unwrap();
        assert_eq!(baseline.config_fingerprint, report.config_fingerprint);
        assert_eq!(baseline.median_ns("advf_analysis/mm"), Some(500));
        assert_eq!(baseline.pre_pr_median_ns("advf_analysis/mm"), None);
    }

    #[test]
    fn speedup_is_materialized_against_a_reference() {
        let report = sample_report();
        let reference = sample_baseline(450, 100);
        let doc = report.to_json(Some(&reference));
        let benches = doc.arr_field("benches").unwrap();
        assert_eq!(benches[0].u64_field("pre_pr_median_ns").unwrap(), 900);
        let speedup = benches[0].f64_field("speedup_vs_pre_pr").unwrap();
        assert!((speedup - 900.0 / 500.0).abs() < 1e-12);
        // No pre-PR record for the propagation bench: fields absent.
        assert!(benches[1].field("pre_pr_median_ns").is_err());
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        let report = sample_report();
        // 500 vs 450 is an 11% regression: inside the default 25% tolerance.
        let lines = gate(&report, &sample_baseline(450, 100), DEFAULT_TOLERANCE).unwrap();
        assert!(lines.iter().all(|l| !l.regressed));
        // 500 vs 300 is a 67% regression: flagged.
        let lines = gate(&report, &sample_baseline(300, 100), DEFAULT_TOLERANCE).unwrap();
        assert!(lines[0].regressed);
        assert!(!lines[1].regressed);
    }

    #[test]
    fn gate_rejects_mismatched_fingerprint_and_missing_benches() {
        let report = sample_report();
        let mut baseline = sample_baseline(450, 100);
        baseline.config_fingerprint ^= 1;
        assert!(gate(&report, &baseline, DEFAULT_TOLERANCE).is_err());

        // A baseline entry with no matching bench in the run.
        let mut baseline = sample_baseline(450, 100);
        baseline.benches.push(BaselineBench {
            name: "advf_analysis/ghost".into(),
            median_ns: 1,
            pre_pr_median_ns: None,
        });
        assert!(gate(&report, &baseline, DEFAULT_TOLERANCE).is_err());

        // A run bench with no baseline entry must fail too, or it would
        // never be gated.
        let mut baseline = sample_baseline(450, 100);
        baseline.benches.pop();
        let err = gate(&report, &baseline, DEFAULT_TOLERANCE).unwrap_err();
        assert!(err.contains("no baseline entry"), "{err}");
    }

    #[test]
    fn sweep_smoke_case_covers_both_suite_workloads() {
        use moard_workloads::WorkloadRegistry;
        let registry = smoke_registry();
        let tasks = sweep_spec().expand(&registry).unwrap();
        // MM targets C, PF targets xe: one analytic aDVF task each.
        assert_eq!(tasks.len(), 2);
        assert!(tasks.iter().any(|t| t.workload == "MM" && t.object == "C"));
        assert!(tasks.iter().any(|t| t.workload == "PF" && t.object == "xe"));
        // Analytic mode: the bench must never touch the fault injector.
        assert!(tasks.iter().all(|t| matches!(
            t.kind,
            moard_inject::StudyTaskKind::Advf { use_dfi: false, .. }
        )));
        // The smoke registry's MM is the same reduced instance the other
        // benches measure.
        let mm = registry.create("mm").unwrap();
        assert_eq!(mm.name(), "MM");
    }

    #[test]
    fn validate_smoke_case_covers_both_suite_workloads() {
        let registry = smoke_registry();
        let spec = validate_smoke_spec();
        let cells = spec.expand(&registry).unwrap();
        assert_eq!(cells.len(), 2);
        assert!(cells.iter().any(|c| c.workload == "MM" && c.object == "C"));
        assert!(cells.iter().any(|c| c.workload == "PF" && c.object == "xe"));
        // The aDVF leg is analytic (the injection loop the bench times is
        // the adaptive RFI campaign, not the DFI resolver)…
        assert!(!spec.use_dfi);
        // …and the campaign budget is CI-sized.
        assert!(spec.max_trials <= 64);
    }

    #[test]
    fn minimize_smoke_case_targets_the_suite_mm_cell() {
        let spec = minimize_smoke_spec();
        spec.validate().unwrap();
        assert_eq!(spec.workload, "mm");
        assert_eq!(spec.object, "C");
        assert_eq!(spec.stride, smoke_config().site_stride);
        // Unpinned: the bench times the finder scan too.
        assert!(spec.site.is_none() && spec.expected.is_none());
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(Baseline::from_json_str("{not json").is_err());
        assert!(Baseline::from_json_str(r#"{"schema_version": 99}"#).is_err());
        assert!(Baseline::from_json_str(r#"{"schema_version": 0}"#).is_err());
    }

    #[test]
    fn version_1_baselines_still_parse() {
        // Pre-`warmup_iters` documents must remain valid baselines, or a
        // schema bump would silently drop their pre-PR references.
        let text = format!(
            r#"{{
              "schema_version": 1,
              "kind": "moard-bench-smoke",
              "config_fingerprint": "{}",
              "benches": [
                {{"name": "advf_analysis/mm", "median_ns": 500, "min_ns": 1,
                  "max_ns": 2, "iters": 10, "pre_pr_median_ns": 1000}}
              ]
            }}"#,
            fingerprint_hex(smoke_config().fingerprint())
        );
        let baseline = Baseline::from_json_str(&text).unwrap();
        assert_eq!(baseline.median_ns("advf_analysis/mm"), Some(500));
        assert_eq!(baseline.pre_pr_median_ns("advf_analysis/mm"), Some(1000));
    }
}
