//! Minimal wall-clock micro-benchmark harness.
//!
//! The Criterion dependency is unavailable in this offline build, so the
//! `benches/` targets are plain `harness = false` binaries built on this
//! module: warm up, run a fixed number of timed iterations, report the
//! median and spread.  Good enough to compare orders of magnitude and catch
//! regressions by eye; not a statistics suite.

use std::time::Instant;

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Summary statistics of one timed benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchStats {
    /// Benchmark name as printed.
    pub name: String,
    /// Median of the timed samples, in nanoseconds.
    pub median_ns: u128,
    /// Fastest timed sample, in nanoseconds.
    pub min_ns: u128,
    /// Slowest timed sample, in nanoseconds.
    pub max_ns: u128,
    /// Number of timed iterations.
    pub iters: u32,
    /// Number of untimed warmup iterations run before the timed ones.
    pub warmup_iters: u32,
}

/// Time `f` over `iters` iterations (after `warmup` untimed ones), print a
/// one-line summary, and return the statistics (consumed by the
/// `bench_smoke` regression gate).
pub fn bench(name: &str, warmup: u32, iters: u32, mut f: impl FnMut()) -> BenchStats {
    assert!(iters > 0, "need at least one timed iteration");
    for _ in 0..warmup {
        f();
    }
    let mut samples_ns: Vec<u128> = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let start = Instant::now();
        f();
        samples_ns.push(start.elapsed().as_nanos());
    }
    samples_ns.sort_unstable();
    let median = samples_ns[samples_ns.len() / 2];
    let min = samples_ns[0];
    let max = samples_ns[samples_ns.len() - 1];
    println!(
        "{name:<40} median {} (min {}, max {}, n={iters})",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max)
    );
    BenchStats {
        name: name.to_string(),
        median_ns: median,
        min_ns: min,
        max_ns: max,
        iters,
        warmup_iters: warmup,
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_the_closure_the_right_number_of_times() {
        let mut calls = 0u32;
        let stats = bench("counter", 2, 5, || calls += 1);
        assert_eq!(calls, 7);
        assert_eq!(stats.name, "counter");
        assert_eq!(stats.iters, 5);
        assert_eq!(stats.warmup_iters, 2);
        assert!(stats.min_ns <= stats.median_ns && stats.median_ns <= stats.max_ns);
    }

    #[test]
    fn formatting_picks_sane_units() {
        assert_eq!(fmt_ns(12), "12 ns");
        assert_eq!(fmt_ns(1_500), "1.500 µs");
        assert_eq!(fmt_ns(2_500_000), "2.500 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }
}
