//! # moard-bench
//!
//! Shared plumbing for the table/figure binaries and the Criterion benches.
//!
//! Every table and figure of the paper's evaluation (§V and §VI) has a
//! dedicated binary in `src/bin/` that regenerates the corresponding rows or
//! series; see `EXPERIMENTS.md` at the repository root for the index and for
//! paper-vs-measured comparisons.  All binaries accept `--quick` to trade
//! site coverage for runtime (deterministic striding), and `--full` for the
//! exhaustive settings.

pub mod micro;
pub mod smoke;

use moard_core::{AdvfReport, AnalysisConfig, MoardError};
use moard_inject::{Session, SessionReport, WorkloadHarness};

/// Effort level selected on the command line of a figure binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Stride over participation sites and cap DFI so a full figure
    /// regenerates in minutes on a laptop.
    Quick,
    /// Analyze every participation site with unbounded DFI (closest to the
    /// paper's cluster campaign).
    Full,
}

impl Effort {
    /// Parse the effort level from process arguments (`--quick` is the
    /// default, `--full` selects exhaustive settings).
    pub fn from_args() -> Effort {
        if std::env::args().any(|a| a == "--full") {
            Effort::Full
        } else {
            Effort::Quick
        }
    }

    /// The analysis configuration for this effort level.
    pub fn analysis_config(self) -> AnalysisConfig {
        match self {
            Effort::Quick => AnalysisConfig {
                site_stride: 8,
                max_dfi_per_object: Some(25_000),
                ..Default::default()
            },
            Effort::Full => AnalysisConfig::default(),
        }
    }

    /// Budget of injections for exhaustive-validation campaigns.
    pub fn exhaustive_budget(self) -> u64 {
        match self {
            Effort::Quick => 2_000,
            Effort::Full => 200_000,
        }
    }
}

/// Workload names whose explicit mention on the command line restricts a
/// figure binary to a subset (e.g. `fig4_advf_breakdown cg lu`).
pub fn workload_filter() -> Vec<String> {
    std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_ascii_lowercase())
        .collect()
}

/// True if the workload should be included given the filter.
pub fn included(filter: &[String], name: &str) -> bool {
    filter.is_empty() || filter.iter().any(|f| f == &name.to_ascii_lowercase())
}

/// Print the standard header of a figure binary.
pub fn print_header(figure: &str, description: &str, effort: Effort) {
    println!("# MOARD reproduction — {figure}");
    println!("# {description}");
    println!("# effort: {effort:?} (pass --full for exhaustive settings)");
    println!();
}

/// Render one aDVF report row with the three-level breakdown (Fig. 4 style).
pub fn level_row(report: &AdvfReport) -> String {
    let (op, prop, alg) = report.accumulator.level_breakdown();
    format!(
        "{:<8} {:<14} {:>8.4} {:>10.4} {:>12.4} {:>10.4} {:>10} {:>8}",
        report.workload,
        report.object,
        report.advf(),
        op,
        prop,
        alg,
        report.sites_analyzed,
        report.dfi_runs
    )
}

/// Header matching [`level_row`].
pub fn level_header() -> String {
    format!(
        "{:<8} {:<14} {:>8} {:>10} {:>12} {:>10} {:>10} {:>8}",
        "workload", "object", "aDVF", "op-level", "propagation", "algorithm", "sites", "dfi"
    )
}

/// Render one aDVF report row with the operation-kind breakdown (Fig. 5 style).
pub fn kind_row(report: &AdvfReport) -> String {
    let (overwriting, overshadowing, logic) = report.accumulator.kind_breakdown();
    format!(
        "{:<8} {:<14} {:>8.4} {:>12.4} {:>14.4} {:>10.4}",
        report.workload,
        report.object,
        report.advf(),
        overwriting,
        overshadowing,
        logic
    )
}

/// Header matching [`kind_row`].
pub fn kind_header() -> String {
    format!(
        "{:<8} {:<14} {:>8} {:>12} {:>14} {:>10}",
        "workload", "object", "aDVF", "overwriting", "overshadowing", "logic&cmp"
    )
}

/// Analyze every target data object of a named workload through the
/// session façade (objects fan out over worker threads).
pub fn analyze_workload(name: &str, effort: Effort) -> Result<SessionReport, MoardError> {
    Session::for_workload(name)?
        .config(effort.analysis_config())
        .run()
}

/// Prepare a harness by name, or print the typed error and exit — the
/// figure binaries' graceful replacement for `.expect(..)`.
pub fn harness_or_exit(name: &str) -> WorkloadHarness {
    unwrap_or_exit(WorkloadHarness::by_name(name))
}

/// Unwrap a pipeline result, or print the typed error and exit(1).
pub fn unwrap_or_exit<T>(result: Result<T, MoardError>) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_configs_differ() {
        let quick = Effort::Quick.analysis_config();
        let full = Effort::Full.analysis_config();
        assert!(quick.site_stride > full.site_stride);
        assert!(quick.max_dfi_per_object.is_some());
        assert!(full.max_dfi_per_object.is_none());
        assert!(Effort::Quick.exhaustive_budget() < Effort::Full.exhaustive_budget());
    }

    #[test]
    fn filter_logic() {
        assert!(included(&[], "CG"));
        assert!(included(&["cg".into()], "CG"));
        assert!(!included(&["lu".into()], "CG"));
    }

    #[test]
    fn row_rendering_contains_fields() {
        let mut acc = moard_core::AdvfAccumulator::new();
        acc.add_participation(&[(
            moard_core::Masking::Operation(moard_core::OpMaskKind::Overwriting),
            1.0,
        )]);
        let report = AdvfReport {
            object: "r".into(),
            workload: "CG".into(),
            accumulator: acc,
            sites_analyzed: 1,
            dfi_runs: 0,
            dfi_cache_hits: 0,
            resolved_analytically: 1,
            dfi_budget_exhausted: false,
            patterns: "single-bit".into(),
            pattern_tallies: vec![],
            lanes_batched: 0,
            batch_walks: 0,
            batch_fallback_lanes: 0,
            config_fingerprint: 0,
        };
        assert!(level_row(&report).contains("CG"));
        assert!(kind_row(&report).contains("1.0000"));
        assert!(level_header().contains("propagation"));
        assert!(kind_header().contains("overshadowing"));
    }
}
