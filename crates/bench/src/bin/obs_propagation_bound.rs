//! §III-D observation — bounding the error-propagation path.
//!
//! The paper justifies the propagation window k by random fault injection:
//! among injections whose errors are NOT masked within k operations after the
//! target operation, 87% (k = 10) / 100% (k = 50) lead to numerically
//! incorrect outcomes.  This binary reproduces that characterization: it
//! samples participation sites across the benchmarks, keeps those the
//! operation-level rules cannot mask, checks whether the propagation replay
//! masks them within k, and compares with the deterministic-injection verdict.

use moard_bench::{harness_or_exit, print_header, unwrap_or_exit, Effort};
use moard_core::{analyze_operation, ErrorPattern, OpVerdict, ReplayCursor};
use moard_vm::OutcomeClass;

fn main() {
    let effort = Effort::from_args();
    print_header(
        "Observation (Section III-D)",
        "errors not masked within k operations rarely end up masked at all",
        effort,
    );
    let workloads = ["cg", "lu", "mm", "lulesh"];
    let ks = [10usize, 50usize];
    let per_object = match effort {
        Effort::Quick => 60,
        Effort::Full => 250,
    };
    for k in ks {
        let mut not_masked_within_k = 0u64;
        let mut incorrect_outcomes = 0u64;
        for wl in workloads {
            let harness = harness_or_exit(wl);
            // Sites are enumerated through the per-object trace index, and
            // one cursor's replay buffers are reused across all of them.
            let mut cursor = ReplayCursor::new(harness.trace());
            for object in harness.workload().target_objects() {
                let sites = unwrap_or_exit(harness.sites(object));
                let stride = (sites.len() / per_object).max(1);
                for site in sites.iter().step_by(stride) {
                    let rec = harness.trace().record(site.record_id).unwrap();
                    let bit = 62 % site.bit_width();
                    let verdict = analyze_operation(&rec, site.slot, &ErrorPattern::single(bit));
                    let corrupt = match verdict {
                        OpVerdict::Propagate { corrupt } => corrupt,
                        OpVerdict::OvershadowCandidate { corrupt } => corrupt,
                        _ => continue,
                    };
                    let prop = cursor.replay(site.record_id as usize + 1, &corrupt, k);
                    if prop.is_masked() {
                        continue;
                    }
                    not_masked_within_k += 1;
                    let outcome = harness.injector().run_classified(&site.fault_bit(bit));
                    if !matches!(outcome, OutcomeClass::Identical) {
                        incorrect_outcomes += 1;
                    }
                }
            }
        }
        let pct = if not_masked_within_k == 0 {
            0.0
        } else {
            100.0 * incorrect_outcomes as f64 / not_masked_within_k as f64
        };
        println!(
            "k = {:>3}: {:>5} injections not masked within k; {:>6.1}% of them end numerically different (paper: 87% at k=10, 100% at k=50)",
            k, not_masked_within_k, pct
        );
    }
}
