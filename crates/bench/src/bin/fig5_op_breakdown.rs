//! Figure 5 — aDVF broken down by operation-level masking kind:
//! value overwriting, value overshadowing, and logic & comparison.

use moard_bench::{
    analyze_workload, included, kind_header, kind_row, print_header, unwrap_or_exit,
    workload_filter, Effort,
};

fn main() {
    let effort = Effort::from_args();
    let filter = workload_filter();
    print_header(
        "Figure 5",
        "aDVF breakdown by operation-level masking kind",
        effort,
    );
    println!("{}", kind_header());
    for w in moard_workloads::table1_workloads() {
        if !included(&filter, w.name()) {
            continue;
        }
        let session = unwrap_or_exit(analyze_workload(w.name(), effort));
        for report in &session.reports {
            println!("{}", kind_row(report));
        }
    }
}
