//! Figure 5 — aDVF broken down by operation-level masking kind:
//! value overwriting, value overshadowing, and logic & comparison.

use moard_bench::{analyze_workload, included, kind_header, kind_row, print_header, workload_filter, Effort};

fn main() {
    let effort = Effort::from_args();
    let filter = workload_filter();
    print_header(
        "Figure 5",
        "aDVF breakdown by operation-level masking kind",
        effort,
    );
    println!("{}", kind_header());
    for w in moard_workloads::table1_workloads() {
        if !included(&filter, w.name()) {
            continue;
        }
        for report in analyze_workload(w.name(), effort) {
            println!("{}", kind_row(&report));
        }
    }
}
