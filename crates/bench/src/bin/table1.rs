//! Table I — benchmarks and applications of the study, their evaluated code
//! segments, and the target data objects — driven by the sweep engine's
//! task matrix: the rows are exactly the (workload, object) cells a
//! `StudySpec` over the Table I benchmarks expands to.
//!
//! Pass `--advf` to actually execute the sweep (quick settings: stride 8,
//! DFI capped) and append the measured aDVF of every target data object;
//! `moard sweep --workloads table1` produces the same numbers as JSON.

use moard_bench::unwrap_or_exit;
use moard_inject::{StudyRunner, StudySpec, StudyTaskKind, WorkloadSelector};
use moard_workloads::{builtin_registry, WorkloadRegistry};

fn main() {
    let run_advf = std::env::args().any(|a| a == "--advf");
    let registry = builtin_registry();
    let spec = StudySpec::default()
        .workloads(WorkloadSelector::Table1)
        .strides(vec![8])
        .max_dfis(vec![Some(25_000)]);
    let tasks = unwrap_or_exit(spec.expand(registry));

    println!("# MOARD reproduction — Table I");
    println!(
        "{:<8} {:<34} {:<30} target data objects",
        "name", "description", "code segment"
    );
    for workload in distinct_workloads(&tasks) {
        let info = registry
            .descriptor(workload)
            .expect("expanded workloads are registered");
        let targets: Vec<&str> = tasks
            .iter()
            .filter(|t| t.workload == workload)
            .map(|t| t.object.as_str())
            .collect();
        println!(
            "{:<8} {:<34} {:<30} {}",
            info.name,
            info.description,
            info.code_segment,
            targets.join(", ")
        );
    }
    println!();
    println!(
        "# task matrix: {} aDVF tasks across {} workloads (study fingerprint {})",
        tasks
            .iter()
            .filter(|t| matches!(t.kind, StudyTaskKind::Advf { .. }))
            .count(),
        distinct_workloads(&tasks).len(),
        moard_core::fingerprint_hex(spec.fingerprint()),
    );

    if run_advf {
        println!();
        println!(
            "{:<8} {:<14} {:>8} {:>10} {:>8}",
            "name", "object", "aDVF", "sites", "dfi"
        );
        let report = unwrap_or_exit(StudyRunner::new(spec).run());
        for entry in &report.entries {
            println!(
                "{:<8} {:<14} {:>8.4} {:>10} {:>8}",
                entry.workload,
                entry.object,
                entry.advf.advf(),
                entry.advf.sites_analyzed,
                entry.advf.dfi_runs
            );
        }
    } else {
        println!("# pass --advf to execute the sweep and print measured aDVF values");
    }
}

fn distinct_workloads(tasks: &[moard_inject::StudyTask]) -> Vec<&str> {
    let mut out: Vec<&str> = Vec::new();
    for t in tasks {
        if !out.contains(&t.workload.as_str()) {
            out.push(&t.workload);
        }
    }
    out
}
