//! Table I — benchmarks and applications of the study, their evaluated code
//! segments, and the target data objects.

fn main() {
    println!("# MOARD reproduction — Table I");
    println!(
        "{:<8} {:<34} {:<30} target data objects",
        "name", "description", "code segment"
    );
    for w in moard_workloads::table1_workloads() {
        let info = moard_workloads::WorkloadInfo::of(w.as_ref());
        println!(
            "{:<8} {:<34} {:<30} {}",
            info.name,
            info.description,
            info.code_segment,
            info.targets.join(", ")
        );
    }
}
