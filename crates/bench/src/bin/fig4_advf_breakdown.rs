//! Figure 4 — aDVF of every target data object, broken down into the
//! operation, error-propagation, and algorithm levels.
//!
//! Pass workload names to restrict (e.g. `fig4_advf_breakdown cg lu`);
//! pass `--events` to additionally print absolute masking-event counts
//! (the §V-A comparison of colidx vs. r); pass `--full` for exhaustive
//! site coverage.

use moard_bench::{
    analyze_workload, included, level_header, level_row, print_header, unwrap_or_exit,
    workload_filter, Effort,
};

fn main() {
    let effort = Effort::from_args();
    let show_events = std::env::args().any(|a| a == "--events");
    let filter = workload_filter();
    print_header(
        "Figure 4",
        "aDVF breakdown by masking level (operation / propagation / algorithm)",
        effort,
    );
    println!("{}", level_header());
    for w in moard_workloads::table1_workloads() {
        if !included(&filter, w.name()) {
            continue;
        }
        let session = unwrap_or_exit(analyze_workload(w.name(), effort));
        for report in &session.reports {
            println!("{}", level_row(report));
            if show_events {
                println!(
                    "    masking events = {:.3e}, participations = {}",
                    report.masking_events(),
                    report.accumulator.participations
                );
            }
        }
    }
}
