//! Figure 7 — random fault injection success rates (500..3500 tests, with
//! 95% margins of error) for the LULESH coordinate arrays m_x, m_y, m_z,
//! compared with the deterministic aDVF values.

use moard_bench::{harness_or_exit, print_header, unwrap_or_exit, Effort};
use moard_inject::{Parallelism, RfiConfig};

fn main() {
    let effort = Effort::from_args();
    print_header(
        "Figure 7",
        "RFI success rate vs number of tests (95% CI) against deterministic aDVF",
        effort,
    );
    let harness = harness_or_exit("lulesh");
    let objects = ["m_x", "m_y", "m_z"];
    let test_counts: Vec<usize> = match effort {
        Effort::Quick => vec![500, 1000, 1500],
        Effort::Full => vec![500, 1000, 1500, 2000, 2500, 3000, 3500],
    };
    println!(
        "{:<8} {:>8} {:>14} {:>12}",
        "object", "tests", "success rate", "margin(95%)"
    );
    for obj in objects {
        for (set, &tests) in test_counts.iter().enumerate() {
            let stats = unwrap_or_exit(harness.rfi(
                obj,
                &RfiConfig {
                    tests,
                    seed: 0xF1_F1 + set as u64,
                    parallelism: Parallelism::Auto,
                },
            ));
            println!(
                "{:<8} {:>8} {:>14.4} {:>12.4}",
                obj,
                tests,
                stats.success_rate(),
                stats.margin_of_error(0.95)
            );
        }
        let report = unwrap_or_exit(harness.analyze(obj, effort.analysis_config()));
        println!(
            "{:<8} {:>8} {:>14.4}   (deterministic aDVF)",
            obj,
            "aDVF",
            report.advf()
        );
        println!();
    }
}
