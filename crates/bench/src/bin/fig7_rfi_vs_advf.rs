//! Figure 7 — random fault injection success rates (500..3500 tests, with
//! 95% margins of error) for the LULESH coordinate arrays m_x, m_y, m_z,
//! compared with the deterministic aDVF values.
//!
//! Rebuilt on the sweep engine: one `StudySpec` with an RFI validation leg
//! expands to the whole figure's task matrix (3 objects × test counts RFI
//! campaigns plus 3 aDVF analyses), which the `StudyRunner` schedules
//! per-task across the worker pool.  Campaign seeds are `0xF1F1 + set`,
//! exactly as the pre-sweep revision of this binary, so the series is
//! unchanged.

use moard_bench::{print_header, unwrap_or_exit, Effort};
use moard_inject::{ObjectSelector, StudyRunner, StudySpec, WorkloadSelector};

fn main() {
    let effort = Effort::from_args();
    print_header(
        "Figure 7",
        "RFI success rate vs number of tests (95% CI) against deterministic aDVF",
        effort,
    );
    let objects = ["m_x", "m_y", "m_z"];
    let test_counts: Vec<usize> = match effort {
        Effort::Quick => vec![500, 1000, 1500],
        Effort::Full => vec![500, 1000, 1500, 2000, 2500, 3000, 3500],
    };
    let config = effort.analysis_config();
    let spec = StudySpec::default()
        .workloads(WorkloadSelector::Named(vec!["lulesh".into()]))
        .objects(ObjectSelector::Named(
            objects.iter().map(|o| o.to_string()).collect(),
        ))
        .windows(vec![config.propagation_window])
        .strides(vec![config.site_stride])
        .max_dfis(vec![config.max_dfi_per_object])
        .rfi_leg(test_counts, 0xF1_F1);
    let report = unwrap_or_exit(StudyRunner::new(spec).run());

    println!(
        "{:<8} {:>8} {:>14} {:>12}",
        "object", "tests", "success rate", "margin(95%)"
    );
    for obj in objects {
        for rfi in report.rfi_for("LULESH", obj) {
            println!(
                "{:<8} {:>8} {:>14.4} {:>12.4}",
                obj,
                rfi.summary.tests,
                rfi.summary.success_rate(),
                rfi.summary.margin_95()
            );
        }
        let entry = report
            .entry("LULESH", obj)
            .expect("the sweep covered every selected object");
        println!(
            "{:<8} {:>8} {:>14.4}   (deterministic aDVF)",
            obj,
            "aDVF",
            entry.advf.advf()
        );
        println!();
    }
}
