//! `paged_stress` — out-of-core scale proof for the paged trace backend.
//!
//! Builds a synthetic workload whose dynamic trace holds at least
//! `--records N` records (default 10M) while its analyzed data object has
//! only a few thousand participation sites, then runs the full aDVF
//! analysis through the selected `--trace-backend`.  The point: under a
//! bounded address space (e.g. `ulimit -v`), the in-memory backend dies
//! while the paged backend streams segments through its per-reader LRU and
//! completes — with a report byte-identical to the unbounded in-memory run.
//!
//! ```text
//! paged_stress [--records N] [--backend memory|paged[:DIR]] [--k N]
//!              [--stride N] [--out FILE]
//! ```
//!
//! Prints a summary to stdout and writes the `SessionReport` JSON to
//! `--out` (CI uploads it as the stress artifact).  Exits non-zero if the
//! trace came up short of the requested record count or the analysis fails.

use moard_inject::Session;
use moard_ir::prelude::*;
use moard_vm::TraceBackendSpec;
use moard_workloads::{Acceptance, Workload};

/// Synthetic kernel: `outer` rounds of a long register-only inner loop,
/// each round storing one element of `acc`.  The trace grows with
/// `outer * inner` while `acc`'s participation sites grow only with
/// `outer` — production-shaped: a huge execution history around a small
/// object under study.
struct Stress {
    outer: i64,
    inner: i64,
}

impl Stress {
    /// Size the kernel so the trace holds at least `records` records.  One
    /// inner iteration emits seven records (fmul, fadd, mov, plus the
    /// loop's increment/compare/branch bookkeeping); sizing against six
    /// keeps a safety margin below that, so the floor holds even if the
    /// loop lowering sheds a record.
    fn for_records(records: u64) -> Stress {
        let outer: i64 = 1024;
        let inner = ((records as i64 + outer * 6 - 1) / (outer * 6)).max(1);
        Stress { outer, inner }
    }
}

impl Workload for Stress {
    fn name(&self) -> &'static str {
        "STRESS"
    }

    fn description(&self) -> &'static str {
        "Synthetic long-trace kernel for out-of-core trace-backend stress"
    }

    fn code_segment(&self) -> &'static str {
        "stress"
    }

    fn target_objects(&self) -> Vec<&'static str> {
        vec!["acc"]
    }

    fn output_objects(&self) -> Vec<&'static str> {
        vec!["acc"]
    }

    fn acceptance(&self) -> Acceptance {
        Acceptance::Exact
    }

    fn max_steps(&self) -> u64 {
        // Generous ceiling over the ~10 dynamic ops per inner iteration.
        (self.outer * self.inner) as u64 * 16 + (self.outer as u64) * 32 + 4096
    }

    fn build(&self) -> Module {
        let mut m = Module::new("stress");
        let acc = m.add_global(Global::zeroed("acc", Type::F64, self.outer as u64));
        let mut f = FunctionBuilder::new("main", &[], Some(Type::F64));
        f.for_loop(
            Operand::const_i64(0),
            Operand::const_i64(self.outer),
            |f, i| {
                let s = f.alloc_reg(Type::F64);
                f.mov(s, Operand::const_f64(1.0));
                f.for_loop(
                    Operand::const_i64(0),
                    Operand::const_i64(self.inner),
                    |f, _j| {
                        let p = f.fmul(Operand::Reg(s), Operand::const_f64(1.000_000_119));
                        let q = f.fadd(Operand::Reg(p), Operand::const_f64(1.0e-9));
                        f.mov(s, Operand::Reg(q));
                    },
                );
                f.store_elem(Type::F64, acc, Operand::Reg(i), Operand::Reg(s));
            },
        );
        // Fold acc into the scalar return so the stores are live.
        let tr = f.alloc_reg(Type::F64);
        f.mov(tr, Operand::const_f64(0.0));
        f.for_loop(
            Operand::const_i64(0),
            Operand::const_i64(self.outer),
            |f, i| {
                let v = f.load_elem(Type::F64, acc, Operand::Reg(i));
                let s = f.fadd(Operand::Reg(tr), Operand::Reg(v));
                f.mov(tr, Operand::Reg(s));
            },
        );
        f.ret(Some(Operand::Reg(tr)));
        m.add_function(f.finish());
        moard_ir::verify::assert_verified(&m);
        m
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: paged_stress [--records N] [--backend memory|paged[:DIR]] [--k N]\n\
         \x20                   [--stride N] [--out FILE]"
    );
    std::process::exit(2);
}

fn main() {
    let mut records: u64 = 10_000_000;
    let mut backend = TraceBackendSpec::paged();
    let mut k: usize = 50;
    let mut stride: usize = 4;
    let mut out: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("paged_stress: {flag} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--records" => {
                records = value("--records").parse().unwrap_or_else(|_| usage());
            }
            "--backend" => match TraceBackendSpec::parse(&value("--backend")) {
                Ok(spec) => backend = spec,
                Err(e) => {
                    eprintln!("paged_stress: --backend: {e}");
                    usage()
                }
            },
            "--k" => k = value("--k").parse().unwrap_or_else(|_| usage()),
            "--stride" => stride = value("--stride").parse().unwrap_or_else(|_| usage()),
            "--out" => out = Some(value("--out").into()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("paged_stress: unknown flag `{other}`");
                usage()
            }
        }
    }

    let stress = Stress::for_records(records);
    println!(
        "kernel              : outer {} x inner {} (target >= {} records)",
        stress.outer, stress.inner, records
    );
    let session = Session::from_workload(Box::new(stress))
        .object("acc")
        .without_dfi()
        .window(k)
        .stride(stride)
        .trace_backend(backend.clone())
        .build()
        .unwrap_or_else(|e| {
            eprintln!("paged_stress: preparing the harness failed: {e}");
            std::process::exit(1);
        });
    let stats = session.trace_stats();
    println!("trace backend       : {}", backend.describe());
    println!("trace records       : {}", stats.records);
    println!("indexed objects     : {}", stats.indexed_objects);
    println!("index entries       : {}", stats.index_entries);
    if stats.records < records {
        eprintln!(
            "paged_stress: trace came up short: {} < {records} records",
            stats.records
        );
        std::process::exit(1);
    }
    let report = session.run().unwrap_or_else(|e| {
        eprintln!("paged_stress: analysis failed: {e}");
        std::process::exit(1);
    });
    let advf = report.reports[0].advf();
    println!("sites analyzed      : {}", report.reports[0].sites_analyzed);
    println!("aDVF(acc)           : {advf:.6}");
    if let Some(path) = out {
        let json = report.to_json().to_pretty();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("paged_stress: writing {} failed: {e}", path.display());
            std::process::exit(1);
        }
        println!("report              : {}", path.display());
    }
}
