//! Figure 6 — model validation: aDVF vs. the success rate of exhaustive
//! fault injection for the major data objects of CG's conj_grad and
//! LULESH's CalcMonotonicQRegionForElems; both metrics must rank the
//! objects identically.

use moard_bench::{harness_or_exit, print_header, unwrap_or_exit, Effort};

fn main() {
    let effort = Effort::from_args();
    print_header(
        "Figure 6",
        "aDVF vs exhaustive-injection success rate (ranking validation)",
        effort,
    );
    let cases: [(&str, &[&str]); 2] = [
        ("cg", &["rowstr", "colidx", "a", "p", "q"]),
        ("lulesh", &["m_x", "m_y", "m_z"]),
    ];
    println!(
        "{:<8} {:<10} {:>8} {:>14} {:>10}",
        "workload", "object", "aDVF", "success rate", "injections"
    );
    for (wl, objects) in cases {
        let harness = harness_or_exit(wl);
        let mut rows: Vec<(String, f64, f64)> = Vec::new();
        for obj in objects {
            let report = unwrap_or_exit(harness.analyze(obj, effort.analysis_config()));
            let campaign = unwrap_or_exit(harness.exhaustive_with_budget(
                obj,
                effort.exhaustive_budget(),
                &moard_core::ErrorPatternSet::SingleBit,
            ));
            println!(
                "{:<8} {:<10} {:>8.4} {:>14.4} {:>10}",
                harness.workload().name(),
                obj,
                report.advf(),
                campaign.success_rate(),
                campaign.runs
            );
            rows.push((obj.to_string(), report.advf(), campaign.success_rate()));
        }
        let mut by_advf = rows.clone();
        by_advf.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let mut by_fi = rows.clone();
        by_fi.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
        let advf_rank: Vec<&str> = by_advf.iter().map(|r| r.0.as_str()).collect();
        let fi_rank: Vec<&str> = by_fi.iter().map(|r| r.0.as_str()).collect();
        println!("  ranking by aDVF:            {}", advf_rank.join(" < "));
        println!("  ranking by fault injection: {}", fi_rank.join(" < "));
        println!(
            "  rankings agree: {}",
            if advf_rank == fi_rank { "YES" } else { "no" }
        );
        println!();
    }
}
