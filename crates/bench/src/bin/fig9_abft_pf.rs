//! Figure 9 — the Particle Filter ABFT case study: aDVF of the estimate
//! vector xe with and without ABFT protection of the vector multiplications.

use moard_bench::{
    kind_header, kind_row, level_header, level_row, print_header, unwrap_or_exit, Effort,
};
use moard_core::AdvfReport;
use moard_inject::Session;

fn analyze(workload: Box<dyn moard_workloads::Workload>, effort: Effort) -> AdvfReport {
    let mut session = unwrap_or_exit(
        Session::from_workload(workload)
            .config(effort.analysis_config())
            .object("xe")
            .run(),
    );
    session.reports.remove(0)
}

fn main() {
    let effort = Effort::from_args();
    print_header(
        "Figure 9",
        "aDVF of xe in the Particle Filter, without ([xe]) and with (ABFT_[xe]) ABFT",
        effort,
    );
    let plain = analyze(Box::new(moard_workloads::Pf::default()), effort);
    let abft = analyze(Box::new(moard_abft::AbftPf::default()), effort);
    println!("{}", level_header());
    println!("{}", level_row(&plain));
    println!("{}", level_row(&abft));
    println!();
    println!("{}", kind_header());
    println!("{}", kind_row(&plain));
    println!("{}", kind_row(&abft));
    println!();
    println!(
        "aDVF change from ABFT: {:.4} -> {:.4} (the paper finds almost no change)",
        plain.advf(),
        abft.advf()
    );
}
