//! Figure 8 — the matrix-multiplication ABFT case study: aDVF of the product
//! matrix C with and without checksum ABFT, with level and operation-kind
//! breakdowns.

use moard_bench::{
    kind_header, kind_row, level_header, level_row, print_header, unwrap_or_exit, Effort,
};
use moard_core::AdvfReport;
use moard_inject::Session;

fn analyze(workload: Box<dyn moard_workloads::Workload>, effort: Effort) -> AdvfReport {
    let mut session = unwrap_or_exit(
        Session::from_workload(workload)
            .config(effort.analysis_config())
            .object("C")
            .run(),
    );
    session.reports.remove(0)
}

fn main() {
    let effort = Effort::from_args();
    print_header(
        "Figure 8",
        "aDVF of C in matrix multiplication, without ([C]) and with (ABFT_[C]) ABFT",
        effort,
    );
    let plain = analyze(Box::new(moard_workloads::MatMul::default()), effort);
    let abft = analyze(Box::new(moard_abft::AbftMatMul::default()), effort);
    println!("{}", level_header());
    println!("{}", level_row(&plain));
    println!("{}", level_row(&abft));
    println!();
    println!("{}", kind_header());
    println!("{}", kind_row(&plain));
    println!("{}", kind_row(&abft));
    println!();
    println!(
        "aDVF improvement from ABFT: {:.4} -> {:.4} (larger is better)",
        plain.advf(),
        abft.advf()
    );
}
