//! CI bench-smoke harness: run the fixed micro-benchmark suite of the trace
//! engine's hot paths, write the schema-versioned `BENCH_*.json` report, and
//! gate against a committed baseline.
//!
//! ```text
//! bench_smoke --out BENCH_2.json                 # run, write the report
//! bench_smoke --check BENCH_baseline.json        # also fail on >25% regression
//! bench_smoke --check BENCH_baseline.json --tolerance 0.4
//! bench_smoke --write-baseline BENCH_baseline.json   # refresh the baseline
//! bench_smoke --summary summary.md               # per-case speedup table
//! ```
//!
//! The tolerance can also be set with the `BENCH_SMOKE_TOLERANCE` environment
//! variable (a fraction, e.g. `0.25`); the command-line flag wins.  When a
//! baseline entry records `pre_pr_median_ns`, the written report materializes
//! each bench's speedup over that pre-trace-engine reference.

use moard_bench::smoke::{gate, run_suite, Baseline, SmokeReport, DEFAULT_TOLERANCE};

struct Args {
    out: Option<String>,
    check: Option<String>,
    write_baseline: Option<String>,
    summary: Option<String>,
    tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: None,
        check: None,
        write_baseline: None,
        summary: None,
        tolerance: match std::env::var("BENCH_SMOKE_TOLERANCE") {
            Ok(text) => text
                .parse::<f64>()
                .map_err(|_| format!("BENCH_SMOKE_TOLERANCE `{text}` is not a number"))?,
            Err(_) => DEFAULT_TOLERANCE,
        },
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--out" => args.out = Some(value("--out")?),
            "--check" => args.check = Some(value("--check")?),
            "--write-baseline" => args.write_baseline = Some(value("--write-baseline")?),
            "--summary" => args.summary = Some(value("--summary")?),
            "--tolerance" => {
                let text = value("--tolerance")?;
                args.tolerance = text
                    .parse::<f64>()
                    .map_err(|_| format!("--tolerance `{text}` is not a number"))?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if !(0.0..10.0).contains(&args.tolerance) {
        return Err(format!(
            "tolerance {} out of range (expected a fraction like 0.25)",
            args.tolerance
        ));
    }
    Ok(args)
}

fn read_baseline(path: &str) -> Result<Baseline, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    Baseline::from_json_str(&text).map_err(|e| format!("malformed baseline {path}: {e}"))
}

fn write_report(path: &str, report: &SmokeReport, reference: Option<&Baseline>) {
    let text = report.to_json(reference).to_pretty() + "\n";
    if let Err(e) = std::fs::write(path, text) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");
}

/// Render the per-case speedup table as GitHub-flavored markdown (appended
/// to `$GITHUB_STEP_SUMMARY` by the CI bench job).  `vs baseline` compares
/// against the committed medians when `--check` supplied one; `vs pre-PR`
/// is the speedup over the recorded pre-trace-engine reference.
fn summary_markdown(report: &SmokeReport, baseline: Option<&Baseline>) -> String {
    let mut text = String::from("### bench-smoke per-case medians\n\n");
    text.push_str("| case | median | vs baseline | vs pre-PR |\n");
    text.push_str("| --- | ---: | ---: | ---: |\n");
    for b in &report.benches {
        let vs_baseline = baseline
            .and_then(|r| r.median_ns(&b.name))
            .map(|base| format!("{:.2}×", base as f64 / b.median_ns.max(1) as f64))
            .unwrap_or_else(|| "—".into());
        let vs_pre_pr = baseline
            .and_then(|r| r.pre_pr_median_ns(&b.name))
            .map(|pre| format!("{:.2}×", pre as f64 / b.median_ns.max(1) as f64))
            .unwrap_or_else(|| "—".into());
        let median_ms = b.median_ns as f64 / 1e6;
        text.push_str(&format!(
            "| `{}` | {median_ms:.3} ms | {vs_baseline} | {vs_pre_pr} |\n",
            b.name
        ));
    }
    text.push_str("\n(speedup factors: >1× is faster than the reference)\n");
    text
}

fn main() {
    let args = parse_args().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    println!(
        "# MOARD bench-smoke (tolerance {:.0}%)",
        args.tolerance * 100.0
    );
    let report = run_suite();

    let baseline = args.check.as_deref().map(|path| {
        read_baseline(path).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    });

    if let Some(path) = &args.out {
        write_report(path, &report, baseline.as_ref());
    }
    if let Some(path) = &args.write_baseline {
        // Refreshing a baseline must not lose the pre-PR reference medians
        // it carries: without an explicit --check baseline, fall back to the
        // file being overwritten as the `pre_pr_median_ns` source.
        let reference = match &baseline {
            Some(b) => Some(b.clone()),
            None => std::fs::read_to_string(path)
                .ok()
                .and_then(|text| Baseline::from_json_str(&text).ok()),
        };
        write_report(path, &report, reference.as_ref());
    }
    if let Some(path) = &args.summary {
        let text = summary_markdown(&report, baseline.as_ref());
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }

    if let Some(baseline) = &baseline {
        let lines = gate(&report, baseline, args.tolerance).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        });
        let mut regressed = false;
        println!();
        for line in &lines {
            let status = if line.regressed { "REGRESSED" } else { "ok" };
            regressed |= line.regressed;
            println!(
                "{:<28} {:>12} ns vs baseline {:>12} ns  ({:>6.2}x)  {status}",
                line.name, line.current_ns, line.baseline_ns, line.ratio
            );
        }
        if regressed {
            eprintln!(
                "error: benchmark regression beyond {:.0}% tolerance",
                args.tolerance * 100.0
            );
            std::process::exit(1);
        }
        println!(
            "\nall benches within {:.0}% of baseline",
            args.tolerance * 100.0
        );
    }
}
