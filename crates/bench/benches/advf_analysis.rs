//! Micro-bench: throughput of the analytical aDVF pipeline (operation
//! rules + propagation replay, no deterministic fault injection).

use moard_bench::micro::{bench, black_box};
use moard_core::{AdvfAnalyzer, AnalysisConfig};
use moard_vm::{run_traced, Vm};
use moard_workloads::{MatMul, MmConfig, Workload};

fn main() {
    let mm = MatMul::with_config(MmConfig {
        n: 6,
        ..Default::default()
    });
    let module = mm.build();
    let (_, trace) = run_traced(&module).unwrap();
    let vm = Vm::with_defaults(&module).unwrap();
    let obj = vm.objects().by_name("C").unwrap().id;
    bench("advf_analysis/mm_C_analytic_only", 2, 10, || {
        let analyzer = AdvfAnalyzer::new(
            &trace,
            AnalysisConfig {
                site_stride: 4,
                ..Default::default()
            },
        );
        black_box(analyzer.analyze(obj, "C", "MM", None));
    });
}
