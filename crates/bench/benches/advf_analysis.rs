//! Micro-bench: throughput of the analytical aDVF pipeline (operation
//! rules + propagation replay, no deterministic fault injection) on the
//! trace engine's two reference workloads, plus the sharded per-site
//! variant that fans the same analysis out over worker threads.

use moard_bench::micro::{bench, black_box};
use moard_bench::smoke::{smoke_config, smoke_workloads};
use moard_core::AdvfAnalyzer;

fn main() {
    let config = smoke_config();
    for wl in smoke_workloads() {
        let stats = wl.trace.stats();
        println!(
            "# {}: {} records, {} index entries over {} objects",
            wl.workload, stats.records, stats.index_entries, stats.indexed_objects
        );
        bench(
            &format!("advf_analysis/{}_analytic_only", wl.key),
            2,
            10,
            || {
                let analyzer = AdvfAnalyzer::new(&wl.trace, config.clone());
                black_box(analyzer.analyze(wl.object, wl.object_name, &wl.workload, None));
            },
        );
        bench(
            &format!("advf_analysis/{}_sharded_x4", wl.key),
            2,
            10,
            || {
                let analyzer = AdvfAnalyzer::new(&wl.trace, config.clone());
                black_box(analyzer.analyze_sharded(wl.object, wl.object_name, &wl.workload, 4));
            },
        );
    }
}
