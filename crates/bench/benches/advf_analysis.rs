//! Criterion bench: throughput of the analytical aDVF pipeline (operation
//! rules + propagation replay, no deterministic fault injection).

use criterion::{criterion_group, criterion_main, Criterion};
use moard_core::{AdvfAnalyzer, AnalysisConfig};
use moard_vm::{run_traced, Vm};
use moard_workloads::{MatMul, MmConfig, Workload};

fn bench_advf_analysis(c: &mut Criterion) {
    let mm = MatMul::with_config(MmConfig { n: 6, ..Default::default() });
    let module = mm.build();
    let (_, trace) = run_traced(&module).unwrap();
    let vm = Vm::with_defaults(&module).unwrap();
    let obj = vm.objects().by_name("C").unwrap().id;
    let mut group = c.benchmark_group("advf_analysis");
    group.sample_size(10);
    group.bench_function("mm_C_analytic_only", |b| {
        b.iter(|| {
            let analyzer = AdvfAnalyzer::new(
                &trace,
                AnalysisConfig {
                    site_stride: 4,
                    ..Default::default()
                },
            );
            analyzer.analyze(obj, "C", "MM", None)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_advf_analysis);
criterion_main!(benches);
