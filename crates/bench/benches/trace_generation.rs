//! Micro-bench: cost of dynamic trace generation (golden run vs traced
//! run), the "application trace generator" overhead of the MOARD pipeline.

use moard_bench::micro::{bench, black_box};
use moard_vm::{run_golden, run_traced};
use moard_workloads::{MatMul, MmConfig, Workload};

fn main() {
    let mm = MatMul::with_config(MmConfig {
        n: 6,
        ..Default::default()
    });
    let module = mm.build();
    bench("trace_generation/mm_golden_run", 5, 20, || {
        black_box(run_golden(&module).unwrap());
    });
    bench("trace_generation/mm_traced_run", 5, 20, || {
        black_box(run_traced(&module).unwrap());
    });
}
