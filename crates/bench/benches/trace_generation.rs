//! Criterion bench: cost of dynamic trace generation (golden run vs traced
//! run), the "application trace generator" overhead of the MOARD pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use moard_vm::{run_golden, run_traced};
use moard_workloads::{MatMul, MmConfig, Workload};

fn bench_trace_generation(c: &mut Criterion) {
    let mm = MatMul::with_config(MmConfig { n: 6, ..Default::default() });
    let module = mm.build();
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(20);
    group.bench_function("mm_golden_run", |b| {
        b.iter(|| run_golden(&module).unwrap())
    });
    group.bench_function("mm_traced_run", |b| {
        b.iter(|| run_traced(&module).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_trace_generation);
criterion_main!(benches);
