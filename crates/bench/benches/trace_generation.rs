//! Micro-bench: cost of dynamic trace generation (golden run vs traced
//! run), the "application trace generator" overhead of the MOARD pipeline.
//! The traced run now also builds the per-object record index, so the
//! golden/traced gap is the full price of the indexed trace engine; the
//! index-lookup bench shows what that buys per `records_touching` query.

use moard_bench::micro::{bench, black_box};
use moard_vm::{run_golden, run_traced, Vm};
use moard_workloads::{MatMul, MmConfig, Workload};

fn main() {
    let mm = MatMul::with_config(MmConfig {
        n: 6,
        ..Default::default()
    });
    let module = mm.build();
    bench("trace_generation/mm_golden_run", 5, 20, || {
        black_box(run_golden(&module).unwrap());
    });
    bench("trace_generation/mm_traced_run", 5, 20, || {
        black_box(run_traced(&module).unwrap());
    });

    let (_, trace) = run_traced(&module).unwrap();
    let stats = trace.stats();
    println!(
        "# mm trace: {} records, {} index entries over {} objects",
        stats.records, stats.index_entries, stats.indexed_objects
    );
    let vm = Vm::with_defaults(&module).unwrap();
    let c = vm.objects().by_name("C").unwrap().id;
    bench("trace_generation/mm_records_touching_C", 5, 20, || {
        black_box(trace.records_touching(c).count());
    });
}
