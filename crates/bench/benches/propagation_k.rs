//! Micro-bench (ablation): cost of the propagation replay as the window
//! k grows — the §III-D design choice between analysis accuracy and cost.

use moard_bench::micro::{bench, black_box};
use moard_core::{analyze_operation, replay, ErrorPattern, OpVerdict, SiteSlot};
use moard_vm::run_traced;
use moard_workloads::{npb::Cg, Workload};

fn main() {
    let cg = Cg::default();
    let module = cg.build();
    let (_, trace) = run_traced(&module).unwrap();
    // Pick an operand site whose error genuinely propagates.
    let mut seed = None;
    'outer: for rec in &trace.records {
        for (i, op) in rec.operands().iter().enumerate() {
            if op.element.is_some() {
                if let OpVerdict::Propagate { corrupt } =
                    analyze_operation(rec, SiteSlot::Operand(i), &ErrorPattern::single(62))
                {
                    seed = Some((rec.id as usize + 1, corrupt));
                    break 'outer;
                }
            }
        }
    }
    let (start, corrupt) = seed.expect("found a propagating site");
    for k in [5usize, 10, 25, 50, 100] {
        bench(&format!("propagation_k/k={k}"), 5, 20, || {
            black_box(replay(&trace, start, &corrupt, k));
        });
    }
}
