//! Criterion bench (ablation): cost of the propagation replay as the window
//! k grows — the §III-D design choice between analysis accuracy and cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moard_core::{analyze_operation, replay, ErrorPattern, OpVerdict, SiteSlot};
use moard_vm::run_traced;
use moard_workloads::{npb::Cg, Workload};

fn bench_propagation_k(c: &mut Criterion) {
    let cg = Cg::default();
    let module = cg.build();
    let (_, trace) = run_traced(&module).unwrap();
    // Pick an operand site whose error genuinely propagates.
    let mut seed = None;
    'outer: for rec in &trace.records {
        for (i, op) in rec.operands().iter().enumerate() {
            if op.element.is_some() {
                if let OpVerdict::Propagate { corrupt } =
                    analyze_operation(rec, SiteSlot::Operand(i), &ErrorPattern::single(62))
                {
                    seed = Some((rec.id as usize + 1, corrupt));
                    break 'outer;
                }
            }
        }
    }
    let (start, corrupt) = seed.expect("found a propagating site");
    let mut group = c.benchmark_group("propagation_k");
    group.sample_size(20);
    for k in [5usize, 10, 25, 50, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| replay(&trace, start, &corrupt, k))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_propagation_k);
criterion_main!(benches);
