//! Micro-bench (ablation): cost of the propagation replay as the window
//! k grows — the §III-D design choice between analysis accuracy and cost.
//!
//! The propagating seed is found through the trace's per-object record
//! index (no linear scan over the full record list), and the replays share
//! one reusable [`ReplayCursor`], mirroring how the analyzer drives the
//! engine.

use moard_bench::micro::{bench, black_box};
use moard_bench::smoke::propagation_seeds;
use moard_core::ReplayCursor;
use moard_vm::{run_traced, Vm};
use moard_workloads::{npb::Cg, Workload};

fn main() {
    let cg = Cg::default();
    let module = cg.build();
    let (_, trace) = run_traced(&module).unwrap();
    let vm = Vm::with_defaults(&module).unwrap();
    // Pick a site whose error genuinely propagates, walking only the
    // records the index lists for the target objects.
    let seed = cg.target_objects().iter().find_map(|name| {
        let obj = vm.objects().by_name(name)?.id;
        propagation_seeds(&trace, obj, 1).into_iter().next()
    });
    let (start, corrupt) = seed.expect("found a propagating site");
    let mut cursor = ReplayCursor::new(&trace);
    for k in [5usize, 10, 25, 50, 100] {
        bench(&format!("propagation_k/k={k}"), 5, 20, || {
            black_box(cursor.replay(start, &corrupt, k));
        });
    }
}
