//! Micro-bench: cost of one deterministic fault injection (a full
//! re-execution plus outcome classification), the unit of work of the
//! exhaustive and RFI campaigns.

use moard_bench::micro::{bench, black_box};
use moard_core::enumerate_sites;
use moard_inject::DeterministicInjector;
use moard_vm::{run_traced, Vm};
use moard_workloads::{MatMul, MmConfig};

fn main() {
    let injector = DeterministicInjector::new(Box::new(MatMul::with_config(MmConfig {
        n: 6,
        ..Default::default()
    })))
    .expect("MM prepares");
    let (_, trace) = run_traced(injector.module()).unwrap();
    let vm = Vm::with_defaults(injector.module()).unwrap();
    let obj = vm.objects().by_name("C").unwrap().id;
    // Site enumeration is served by the per-object trace index.
    let sites = enumerate_sites(&trace, obj);
    println!(
        "# C: {} participation sites over {} indexed records",
        sites.len(),
        trace.touching_ids(obj).len()
    );
    let fault = sites[10].fault_bit(31);
    bench("fault_injection/mm_single_dfi", 5, 20, || {
        black_box(injector.run_classified(&fault));
    });
}
