//! Criterion bench: cost of one deterministic fault injection (a full
//! re-execution plus outcome classification), the unit of work of the
//! exhaustive and RFI campaigns.

use criterion::{criterion_group, criterion_main, Criterion};
use moard_core::enumerate_sites;
use moard_inject::DeterministicInjector;
use moard_vm::{run_traced, Vm};
use moard_workloads::{MatMul, MmConfig};

fn bench_fault_injection(c: &mut Criterion) {
    let injector = DeterministicInjector::new(Box::new(MatMul::with_config(MmConfig {
        n: 6,
        ..Default::default()
    })));
    let (_, trace) = run_traced(injector.module()).unwrap();
    let vm = Vm::with_defaults(injector.module()).unwrap();
    let obj = vm.objects().by_name("C").unwrap().id;
    let site = enumerate_sites(&trace, obj)[10].clone();
    let fault = site.fault(31);
    let mut group = c.benchmark_group("fault_injection");
    group.sample_size(20);
    group.bench_function("mm_single_dfi", |b| {
        b.iter(|| injector.run_classified(&fault))
    });
    group.finish();
}

criterion_group!(benches, bench_fault_injection);
criterion_main!(benches);
